//! Lowering micro-bench: the per-point stack interpreter vs the
//! register-IR row executor, serial and parallel, on the paper kernels —
//! the 3-D wave adjoint here is the speed claim behind the lowering
//! pipeline (rows must beat the interpreter by ≥2× serially).
//!
//! Sizes default small for CI; override with `PERFORAD_N` /
//! `PERFORAD_N_BURGERS` / `PERFORAD_THREADS` / `PERFORAD_SAMPLES`.

use perforad_bench::micro::Criterion;
use perforad_bench::{env_size, Case};
use perforad_exec::{run_parallel, run_parallel_rows, run_serial, run_serial_rows, ThreadPool};
use perforad_sched::run_schedule;

fn threads() -> usize {
    env_size(
        "PERFORAD_THREADS",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2),
    )
}

fn lowering_group(c: &mut Criterion, mut case: Case) {
    let pool = ThreadPool::new(threads());
    let name = format!("{}_adjoint_lowering", case.name);
    println!("{name}: {}", case.schedule_rows.describe());
    let mut g = c.benchmark_group(&name);
    g.sample_size(5);
    let plan = case.adjoint_plan.clone();
    g.bench_function("interpreter_serial", |b| {
        b.iter(|| run_serial(&plan, &mut case.ws).unwrap())
    });
    g.bench_function("rows_serial", |b| {
        b.iter(|| run_serial_rows(&plan, &mut case.ws).unwrap())
    });
    g.bench_function("interpreter_parallel", |b| {
        b.iter(|| run_parallel(&plan, &mut case.ws, &pool).unwrap())
    });
    g.bench_function("rows_parallel", |b| {
        b.iter(|| run_parallel_rows(&plan, &mut case.ws, &pool).unwrap())
    });
    let fused = case.schedule.clone();
    g.bench_function("fused_interpreter", |b| {
        b.iter(|| run_schedule(&fused, &mut case.ws, &pool).unwrap())
    });
    let fused_rows = case.schedule_rows.clone();
    g.bench_function("fused_rows", |b| {
        b.iter(|| run_schedule(&fused_rows, &mut case.ws, &pool).unwrap())
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    lowering_group(&mut c, Case::wave(env_size("PERFORAD_N", 48)));
    lowering_group(
        &mut c,
        Case::burgers(env_size("PERFORAD_N_BURGERS", 1 << 18)),
    );
}
