//! Criterion benches for the *transformation* itself: symbolic
//! differentiation + shifting + region decomposition, and plan compilation.

use perforad_bench::micro::Criterion;
use perforad_core::{split_disjoint, AdjointOptions, Bound};
use perforad_exec::compile_adjoint;
use perforad_pde::{burgers, heat2d, wave3d};
use perforad_symbolic::{Idx, Symbol};

fn adjoint_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform");
    g.bench_function("wave3d_adjoint", |b| {
        let nest = wave3d::nest();
        let act = wave3d::activity();
        b.iter(|| nest.adjoint(&act, &AdjointOptions::default()).unwrap())
    });
    g.bench_function("burgers_adjoint", |b| {
        let nest = burgers::nest();
        let act = burgers::activity();
        b.iter(|| nest.adjoint(&act, &AdjointOptions::default()).unwrap())
    });
    g.bench_function("heat2d_adjoint", |b| {
        let nest = heat2d::nest();
        let act = heat2d::activity();
        b.iter(|| nest.adjoint(&act, &AdjointOptions::default()).unwrap())
    });
    g.finish();
}

fn region_split(c: &mut Criterion) {
    let n = Symbol::new("n");
    let bounds: Vec<Bound> = (0..3)
        .map(|_| Bound::new(1, Idx::sym(n.clone()) - 2))
        .collect();
    let mut dense = vec![vec![]];
    for _ in 0..3 {
        dense = dense
            .iter()
            .flat_map(|p: &Vec<i64>| {
                [-1i64, 0, 1].iter().map(move |s| {
                    let mut q = p.clone();
                    q.push(*s);
                    q
                })
            })
            .collect();
    }
    c.bench_function("split_disjoint_dense3d_125", |b| {
        b.iter(|| split_disjoint(&bounds, &dense))
    });
}

fn plan_compile(c: &mut Criterion) {
    let (ws, bind) = wave3d::workspace(16, 0.1);
    let adj = wave3d::nest()
        .adjoint(&wave3d::activity(), &AdjointOptions::default())
        .unwrap();
    c.bench_function("compile_adjoint_wave3d_53_nests", |b| {
        b.iter(|| compile_adjoint(&adj, &ws, &bind).unwrap())
    });
}

fn main() {
    let mut c = Criterion::new();
    adjoint_transform(&mut c);
    region_split(&mut c);
    plan_compile(&mut c);
}
