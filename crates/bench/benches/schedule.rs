//! Scheduler bench: unfused (one barrier per adjoint nest) vs fused-tiled
//! (one barrier total, cache-blocked tiles) vs the conventional
//! scatter-with-atomics baseline, on the paper's wave and Burgers kernels.
//!
//! Sizes default small for CI; override with `PERFORAD_N` /
//! `PERFORAD_THREADS` / `PERFORAD_SAMPLES`.

use perforad_bench::micro::Criterion;
use perforad_bench::{env_size, Case};
use perforad_exec::{run_parallel, run_scatter_atomic, ThreadPool};
use perforad_sched::{run_schedule, SchedOptions, TilePolicy};

fn threads() -> usize {
    env_size(
        "PERFORAD_THREADS",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2),
    )
}

fn wave_schedule(c: &mut Criterion) {
    let n = env_size("PERFORAD_N", 64);
    let mut case = Case::wave(n);
    let pool = ThreadPool::new(threads());
    println!(
        "wave3d n={n}, {} threads, {}",
        pool.size(),
        case.schedule.describe()
    );
    let mut g = c.benchmark_group(&format!("wave3d_{n}_adjoint"));
    g.sample_size(5);
    let plan = case.adjoint_plan.clone();
    g.bench_function("unfused_parallel", |b| {
        b.iter(|| run_parallel(&plan, &mut case.ws, &pool).unwrap())
    });
    let schedule = case.schedule.clone();
    g.bench_function("fused_tiled_dynamic", |b| {
        b.iter(|| run_schedule(&schedule, &mut case.ws, &pool).unwrap())
    });
    let static_sched = perforad_sched::compile_schedule(
        &case.adjoint,
        &case.ws,
        &case.bind,
        &SchedOptions::default().with_policy(TilePolicy::Static),
    )
    .unwrap();
    g.bench_function("fused_tiled_static", |b| {
        b.iter(|| run_schedule(&static_sched, &mut case.ws, &pool).unwrap())
    });
    let scatter = case.scatter_plan.clone();
    g.bench_function("scatter_atomic", |b| {
        b.iter(|| run_scatter_atomic(&scatter, &mut case.ws, &pool).unwrap())
    });
    g.finish();
}

fn burgers_schedule(c: &mut Criterion) {
    let n = env_size("PERFORAD_N_BURGERS", 1 << 20);
    let mut case = Case::burgers(n);
    let pool = ThreadPool::new(threads());
    println!(
        "burgers n={n}, {} threads, {}",
        pool.size(),
        case.schedule.describe()
    );
    let mut g = c.benchmark_group(&format!("burgers_{n}_adjoint"));
    g.sample_size(5);
    let plan = case.adjoint_plan.clone();
    g.bench_function("unfused_parallel", |b| {
        b.iter(|| run_parallel(&plan, &mut case.ws, &pool).unwrap())
    });
    let schedule = case.schedule.clone();
    g.bench_function("fused_tiled_dynamic", |b| {
        b.iter(|| run_schedule(&schedule, &mut case.ws, &pool).unwrap())
    });
    let scatter = case.scatter_plan.clone();
    g.bench_function("scatter_atomic", |b| {
        b.iter(|| run_scatter_atomic(&scatter, &mut case.ws, &pool).unwrap())
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    wave_schedule(&mut c);
    burgers_schedule(&mut c);
}
