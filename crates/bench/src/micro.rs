//! A minimal stand-in for the `criterion` micro-bench API.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets drive this harness instead: same `benchmark_group` /
//! `bench_function` / `Bencher::iter` shape, timing with `std::time`,
//! reporting best / median / mean over a configurable sample count
//! (`PERFORAD_SAMPLES`, default 10).

use std::time::Instant;

/// Entry point handed to each bench function (criterion's `Criterion`).
pub struct Criterion {
    samples: usize,
    /// True when `PERFORAD_SAMPLES` was set: the env knob then wins over
    /// per-group `sample_size` calls baked into the bench files.
    env_pinned: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::new()
    }
}

impl Criterion {
    pub fn new() -> Self {
        let env = std::env::var("PERFORAD_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        Criterion {
            samples: env.unwrap_or(10),
            env_pinned: env.is_some(),
        }
    }

    /// Start a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        println!("\n# {name}");
        Group {
            samples: self.samples,
            env_pinned: self.env_pinned,
            _c: self,
        }
    }

    /// Run a standalone bench.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }
}

/// A bench group (criterion's `BenchmarkGroup`).
pub struct Group<'a> {
    samples: usize,
    env_pinned: bool,
    _c: &'a mut Criterion,
}

impl Group<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.env_pinned {
            self.samples = n.max(1);
        }
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; `iter` runs and times the
/// workload once per sample.
pub struct Bencher {
    samples: usize,
    times: Vec<f64>,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            self.times.push(t0.elapsed().as_secs_f64());
            std::hint::black_box(&out);
        }
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{name:<32} (no samples)");
        return;
    }
    b.times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let best = b.times[0];
    let median = b.times[b.times.len() / 2];
    let mean = b.times.iter().sum::<f64>() / b.times.len() as f64;
    println!(
        "{name:<32} best {best:>10.6}s  median {median:>10.6}s  mean {mean:>10.6}s  ({} samples)",
        b.times.len()
    );
}
