//! Figure 15: absolute Burgers runtimes on KNL. The serial conventional
//! adjoint uses Tapenade's min/max stack mode (the 125× case).
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 2_000_000);
    let mut case = perforad_bench::Case::burgers(n);
    let machine = perforad_perfmodel::knl();
    perforad_bench::run_runtimes(
        &mut case,
        &machine,
        1_000_000_000,
        "Figure 15: Runtimes of the Burgers Equation on KNL",
        true,
    );
}
