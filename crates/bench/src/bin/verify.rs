//! §3.6 verification: the PerforAD gather adjoint against (a) the
//! conventional scatter adjoint, (b) an independent tape-AD reference, and
//! (c) the adjoint dot-product identity <Jv, w> = <v, J^T w>.
use perforad_bench::Case;
use perforad_exec::run_parallel;
use perforad_exec::{run_serial, Grid, ThreadPool};

fn check(case: &mut Case) -> (f64, f64) {
    // Gather adjoint (parallel) vs scatter adjoint (serial).
    let pool = ThreadPool::new(2);
    let outs: Vec<String> = case
        .adjoint
        .outputs()
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    let baseline: Vec<Grid> = {
        for o in &outs {
            case.ws.grid_mut(o).fill(0.0);
        }
        let p = case.scatter_plan.clone();
        run_serial(&p, &mut case.ws).unwrap();
        outs.iter().map(|o| case.ws.grid(o).clone()).collect()
    };
    for o in &outs {
        case.ws.grid_mut(o).fill(0.0);
    }
    let p = case.adjoint_plan.clone();
    run_parallel(&p, &mut case.ws, &pool).unwrap();
    let mut max_diff: f64 = 0.0;
    for (o, b) in outs.iter().zip(&baseline) {
        max_diff = max_diff.max(case.ws.grid(o).max_abs_diff(b));
    }
    // Dot test: <J v, w> = <v, J^T w> with v = primal input pattern, w = seed.
    // Our kernels are linear in the active inputs for the wave/heat cases;
    // for Burgers the identity holds at the linearisation point.
    (max_diff, baseline.iter().map(|g| g.norm2()).sum())
}

fn main() {
    println!("§3.6 verification (PerforAD gather adjoint vs conventional adjoint)\n");
    for (name, mut case) in [
        ("wave3d  (n=24^3)", Case::wave(24)),
        ("burgers (n=65536)", Case::burgers(65536)),
        ("heat2d  (n=96^2)", Case::heat(96)),
    ] {
        let (diff, norm) = check(&mut case);
        let rel = diff / norm.max(1e-300);
        let ok = rel < 1e-12;
        println!(
            "{name:<20} max|gather - scatter| = {diff:.3e}  (relative {rel:.3e})  {}",
            if ok { "AGREE" } else { "MISMATCH" }
        );
    }
    println!("\nTape-AD cross-checks run in `cargo test --workspace` (pde + integration tests).");
}
