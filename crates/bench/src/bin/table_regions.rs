//! §3.3.4 loop-nest counts: the 5 / 17 / 25 / 53 / 125 table.
use perforad_core::{split_disjoint, Bound};
use perforad_symbolic::{Idx, Symbol};

fn bounds(rank: usize) -> Vec<Bound> {
    let n = Symbol::new("n");
    (0..rank)
        .map(|_| Bound::new(1, Idx::sym(n.clone()) - 2))
        .collect()
}

fn star(rank: usize) -> Vec<Vec<i64>> {
    let mut v = vec![vec![0; rank]];
    for d in 0..rank {
        for s in [-1i64, 1] {
            let mut o = vec![0; rank];
            o[d] = s;
            v.push(o);
        }
    }
    v
}

fn dense(rank: usize) -> Vec<Vec<i64>> {
    let mut v: Vec<Vec<i64>> = vec![vec![]];
    for _ in 0..rank {
        v = v
            .iter()
            .flat_map(|p| {
                [-1i64, 0, 1].iter().map(move |s| {
                    let mut q = p.clone();
                    q.push(*s);
                    q
                })
            })
            .collect();
    }
    v
}

fn main() {
    println!("§3.3.4 adjoint loop-nest counts (paper vs generated):");
    println!("{:<34}{:>8}{:>12}", "stencil", "paper", "generated");
    let rows: Vec<(&str, usize, usize)> = vec![
        (
            "1-D 3-point (§3.2)",
            5,
            split_disjoint(&bounds(1), &dense(1)).len(),
        ),
        (
            "2-D 5-point star (Fig. 3)",
            17,
            split_disjoint(&bounds(2), &star(2)).len(),
        ),
        (
            "2-D dense 3x3",
            25,
            split_disjoint(&bounds(2), &dense(2)).len(),
        ),
        (
            "3-D 7-point star (wave, §4.1)",
            53,
            split_disjoint(&bounds(3), &star(3)).len(),
        ),
        (
            "3-D dense 3x3x3",
            125,
            split_disjoint(&bounds(3), &dense(3)).len(),
        ),
    ];
    let mut ok = true;
    for (name, paper, got) in rows {
        println!("{name:<34}{paper:>8}{got:>12}");
        ok &= paper == got;
    }
    println!("\nall counts match the paper: {ok}");
}
