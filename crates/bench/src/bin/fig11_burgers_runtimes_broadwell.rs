//! Figure 11: absolute Burgers runtimes on Broadwell (5 bars).
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 2_000_000);
    let mut case = perforad_bench::Case::burgers(n);
    let machine = perforad_perfmodel::broadwell();
    perforad_bench::run_runtimes(
        &mut case,
        &machine,
        1_000_000_000,
        "Figure 11: Runtimes of the Burgers Equation on Broadwell",
        false,
    );
}
