//! Figure 8: speedups of the wave-equation solvers, Broadwell, 1–12 threads.
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 64);
    let mut case = perforad_bench::Case::wave(n);
    let machine = perforad_perfmodel::broadwell();
    perforad_bench::run_scaling(
        &mut case,
        &machine,
        1000,
        "Figure 8: Scalability of the Wave Equation on Broadwell",
    );
}
