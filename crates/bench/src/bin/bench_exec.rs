//! Executor micro-bench with machine-readable output: times the adjoint
//! sweep of each paper kernel under the per-point interpreter, the
//! register-IR row executor, and the fused + tiled schedule, then writes
//! `BENCH_exec.json` so the repo's perf trajectory is recorded run over
//! run.
//!
//! Knobs: `PERFORAD_N` (wave grid edge, default 48), `PERFORAD_N_BURGERS`
//! (cells, default 2^18), `PERFORAD_SAMPLES` (best-of reps, default 5),
//! `PERFORAD_THREADS` (pool size), `PERFORAD_BENCH_JSON` (output path,
//! default `BENCH_exec.json`).

use perforad_bench::{env_size, json_escape, time_best, Case};
use perforad_exec::{run_parallel, run_parallel_rows, run_serial, run_serial_rows, ThreadPool};
use perforad_sched::run_schedule;

struct Measured {
    name: &'static str,
    points: u64,
    series: Vec<(&'static str, f64)>,
}

fn measure(mut case: Case, pool: &ThreadPool, reps: usize) -> Measured {
    let plan = case.adjoint_plan.clone();
    let fused = case.schedule.clone();
    let fused_rows = case.schedule_rows.clone();
    let ws = &mut case.ws;
    let series = vec![
        (
            "interpreter_serial",
            time_best(reps, || {
                run_serial(&plan, ws).unwrap();
            }),
        ),
        (
            "rows_serial",
            time_best(reps, || {
                run_serial_rows(&plan, ws).unwrap();
            }),
        ),
        (
            "interpreter_parallel",
            time_best(reps, || {
                run_parallel(&plan, ws, pool).unwrap();
            }),
        ),
        (
            "rows_parallel",
            time_best(reps, || {
                run_parallel_rows(&plan, ws, pool).unwrap();
            }),
        ),
        (
            "fused_interpreter",
            time_best(reps, || {
                run_schedule(&fused, ws, pool).unwrap();
            }),
        ),
        (
            "fused_rows",
            time_best(reps, || {
                run_schedule(&fused_rows, ws, pool).unwrap();
            }),
        ),
    ];
    Measured {
        name: case.name,
        points: plan.points(),
        series,
    }
}

fn main() {
    let n = env_size("PERFORAD_N", 48);
    let nb = env_size("PERFORAD_N_BURGERS", 1 << 18);
    let reps = env_size("PERFORAD_SAMPLES", 5);
    let threads = env_size(
        "PERFORAD_THREADS",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2),
    );
    let pool = ThreadPool::new(threads);

    let cases = vec![
        measure(Case::wave(n), &pool, reps),
        measure(Case::burgers(nb), &pool, reps),
    ];

    let mut case_json = Vec::new();
    for m in &cases {
        println!(
            "\n## {} adjoint ({} points, {} threads)",
            m.name, m.points, threads
        );
        for (label, secs) in &m.series {
            println!("{label:<24} {secs:>12.6} s");
        }
        let by_label = |label: &str| {
            m.series
                .iter()
                .find(|(l, _)| *l == label)
                .map(|&(_, s)| s)
                .expect("series label present")
        };
        let interp = by_label("interpreter_serial");
        let rows = by_label("rows_serial");
        println!(
            "rows speedup vs interpreter (serial): {:.2}x",
            interp / rows
        );
        let series: Vec<String> = m
            .series
            .iter()
            .map(|(l, s)| format!("{{\"label\":{},\"seconds\":{s}}}", json_escape(l)))
            .collect();
        case_json.push(format!(
            "{{\"name\":{},\"points\":{},\"series\":[{}],\"rows_speedup_serial\":{}}}",
            json_escape(m.name),
            m.points,
            series.join(","),
            interp / rows
        ));
    }
    let payload = format!(
        "{{\"bench\":\"exec_lowering\",\"threads\":{threads},\"samples\":{reps},\
         \"wave_n\":{n},\"burgers_n\":{nb},\"cases\":[{}]}}",
        case_json.join(",")
    );
    let path =
        std::env::var("PERFORAD_BENCH_JSON").unwrap_or_else(|_| "BENCH_exec.json".to_string());
    std::fs::write(&path, &payload).expect("write bench JSON");
    println!("\nwrote {path}");
}
