//! Executor micro-bench with machine-readable output and a regression
//! gate: times the adjoint sweep of each paper kernel under the per-point
//! interpreter, the register-IR row executor, the fused + tiled schedule,
//! the *JIT-compiled* fused schedule (`perforad-jit`'s native lowering;
//! the series is skipped — and so exempt from the gate — when the host
//! has neither a toolchain nor cached artifacts), and the *autotuned*
//! schedule (`perforad-tune` closing the model→schedule loop), writes
//! `BENCH_exec.json`, then — when a baseline file exists — diffs against
//! it and exits nonzero on regressions.
//!
//! The gate compares **normalized** series (each series divided by the
//! same run's `interpreter_serial` for that case): what is gated is
//! "rows/fused/tuned lost their relative win", not wall-clock noise.
//! Normalization removes absolute machine speed but *not*
//! microarchitecture — relative wins themselves vary across CPUs (the
//! autotuner's whole premise) — so re-record `BENCH_baseline.json` on
//! the machine class the gate runs on (CI: the pinned sizes/threads in
//! `.github/workflows/ci.yml`) whenever that class changes, and loosen
//! `PERFORAD_BENCH_GATE_TOL` if a runner fleet is heterogeneous. Series
//! faster than a floor (µs-scale smoke runs) are exempt — they are
//! timing noise, not signal.
//!
//! A `seismic_long` case rides along: a checkpointed time loop ≥4× the
//! example sweep, timing the dense `gradient_store_all` against the
//! bounded-memory `gradient_checkpointed` and reporting the
//! checkpointing profile (`peak_mem_bytes`, `recompute_ratio`,
//! `ckpt_budget`) in the JSON. Its gate reference is its own
//! `storeall_gradient` series.
//!
//! A `seismic_batch` case times the batched multi-shot gradient
//! (`gradient_batch_with`: one compile/tune, shots dispatched under the
//! perf-model-chosen strategy) against N sequential `gradient` calls on
//! the same pool, reporting `shots_per_sec`, `batch_speedup`, the chosen
//! `batch_strategy`, and `request_latency_ns` (per-shot latency
//! percentiles — p50/p95/p99/max in the same histogram shape the serve
//! daemon exports); the two are asserted bitwise-identical in-bench, and
//! its gate reference is its own `sequential_gradient` series.
//!
//! Knobs: `PERFORAD_N` (wave grid edge, default 48), `PERFORAD_N_BURGERS`
//! (cells, default 2^18), `PERFORAD_SEISMIC_N` / `PERFORAD_SEISMIC_STEPS`
//! (seismic sweep, default 20 / 48), `PERFORAD_SHOTS` /
//! `PERFORAD_BATCH_N` / `PERFORAD_BATCH_STEPS` (batched survey, default
//! 8 / 12 / 24), `PERFORAD_SAMPLES` (best-of reps,
//! default 5), `PERFORAD_THREADS` (pool size), `PERFORAD_BENCH_JSON`
//! (output path, default `BENCH_exec.json`), `PERFORAD_BENCH_BASELINE`
//! (baseline path, default `BENCH_baseline.json`; missing file skips the
//! gate), `PERFORAD_BENCH_GATE_TOL` (allowed relative regression, default
//! 0.25), `PERFORAD_BENCH_GATE_FLOOR_US` (min gated series time, default
//! 100). The jit series additionally honours `PERFORAD_JIT_CACHE`
//! (artifact directory) and `PERFORAD_JIT_RUSTC` (toolchain override).
//! With `PERFORAD_TRACE=1` the run records spans across every layer,
//! prints the `TraceReport` rollup, embeds it as `"trace_report"` in the
//! JSON, and writes a `chrome://tracing` file when `PERFORAD_TRACE_OUT`
//! names a path.

use perforad_bench::{env_size, json_escape, time_best, Case};
use perforad_exec::{
    run_parallel, run_parallel_rows, run_serial, run_serial_rows, Grid, ThreadPool,
};
use perforad_jit::{prepare_schedule, JitOptions};
use perforad_pde::seismic::{
    gradient_batch_with, gradient_checkpointed, gradient_store_all, gradient_with_pool, ricker,
    BatchOptions, SeismicConfig, ShotBatch,
};
use perforad_sched::{compile_schedule, run_schedule, run_tuned, SchedOptions};
use perforad_tune::json::{self, Value};
use perforad_tune::{autotune_adjoint, Measure, TuneOptions};

struct Measured {
    name: &'static str,
    points: u64,
    series: Vec<(&'static str, f64)>,
    tuned_config: String,
    tuned_cache_hit: bool,
    /// Milliseconds of out-of-process `rustc` builds for the jit series
    /// (`None` when the series was skipped).
    jit_compile_ms: Option<f64>,
    /// True when every fused group came from the registry or the
    /// persistent artifact cache (zero compiles).
    jit_cache_hit: Option<bool>,
}

fn measure(mut case: Case, pool: &ThreadPool, reps: usize) -> Measured {
    let plan = case.adjoint_plan.clone();
    let fused = case.schedule.clone();
    let fused_rows = case.schedule_rows.clone();
    let bind = case.bind.clone();
    let adjoint = case.adjoint.clone();
    let ws = &mut case.ws;
    let mut series = vec![
        (
            "interpreter_serial",
            time_best(reps, || {
                run_serial(&plan, ws).unwrap();
            }),
        ),
        (
            "rows_serial",
            time_best(reps, || {
                run_serial_rows(&plan, ws).unwrap();
            }),
        ),
        (
            "interpreter_parallel",
            time_best(reps, || {
                run_parallel(&plan, ws, pool).unwrap();
            }),
        ),
        (
            "rows_parallel",
            time_best(reps, || {
                run_parallel_rows(&plan, ws, pool).unwrap();
            }),
        ),
        (
            "fused_interpreter",
            time_best(reps, || {
                run_schedule(&fused, ws, pool).unwrap();
            }),
        ),
        (
            "fused_rows",
            time_best(reps, || {
                run_schedule(&fused_rows, ws, pool).unwrap();
            }),
        ),
    ];
    // The native tier: compile the fused schedule's groups to machine
    // code (persistent artifact cache ⇒ the out-of-process build is paid
    // once per fingerprint) and time it like any other series. Skipped
    // cleanly when the host can neither build nor load native code.
    let mut jit_compile_ms = None;
    let mut jit_cache_hit = None;
    let sched_jit = compile_schedule(&adjoint, ws, &bind, &SchedOptions::default().with_jit())
        .expect("jit schedule compiles");
    match prepare_schedule(&sched_jit, &bind, &JitOptions::default()) {
        Ok(report) => {
            jit_compile_ms = Some(report.compile_ms);
            jit_cache_hit = Some(report.cache_hit());
            series.push((
                "jit",
                time_best(reps, || {
                    run_schedule(&sched_jit, ws, pool).unwrap();
                }),
            ));
        }
        Err(e) => {
            println!("jit series skipped ({e})");
        }
    }

    // The closed loop: autotune this adjoint (model prune + timing; the
    // tuning cache makes the second bench run skip the search) and time
    // the winner like any other series.
    let topts = TuneOptions::default()
        .with_top_k(6)
        .with_measure(Measure::Wall {
            samples: reps.max(1),
        });
    let (tuned_sched, report) =
        autotune_adjoint(&adjoint, ws, &bind, pool, &topts).expect("autotune");
    series.push((
        "tuned",
        time_best(reps, || {
            run_tuned(&tuned_sched, &report.config, ws, pool).unwrap();
        }),
    ));
    Measured {
        name: case.name,
        points: plan.points(),
        series,
        tuned_config: report.config.describe(),
        tuned_cache_hit: report.cache_hit,
        jit_compile_ms,
        jit_cache_hit,
    }
}

/// The checkpointed seismic time loop, ≥4× the example's sweep length:
/// dense store-all gradient vs the bounded-memory checkpointed gradient
/// (tuner-chosen snapshot budget, persisted via the tuning cache like
/// every other tuned series).
struct SeismicMeasured {
    n: usize,
    steps: usize,
    storeall_s: f64,
    checkpointed_s: f64,
    /// Peak bytes of the checkpointed sweep: snapshot-store high-water
    /// mark plus the fixed working set (rolling adjoint window, stepper
    /// and adjoint workspaces) — the number the memory budget bounds.
    peak_mem_bytes: usize,
    dense_mem_bytes: usize,
    recompute_ratio: f64,
    budget: usize,
}

fn measure_seismic(n: usize, steps: usize, reps: usize) -> SeismicMeasured {
    let cfg = SeismicConfig { n, steps, d: 0.1 };
    let src = ricker(steps);
    let c0 = Grid::from_fn(&[n; 3], |ix| 0.8 + 0.4 * (ix[2] as f64 / n as f64));
    let data = Grid::from_fn(&[n; 3], |ix| 1e-3 * ((ix[0] + ix[1] + ix[2]) as f64).sin());
    let mut dense = None;
    let storeall_s = time_best(reps, || {
        dense = Some(gradient_store_all(&cfg, &c0, &data, &src));
    });
    let mut last = None;
    let checkpointed_s = time_best(reps, || {
        last = Some(gradient_checkpointed(&cfg, &c0, &data, &src));
    });
    let (j_ck, g_ck, report) = last.expect("checkpointed gradient ran");
    // The two paths must agree bit for bit — a bench that silently
    // measured a wrong gradient would be worse than no bench.
    let (j_ref, g_ref) = dense.expect("store-all gradient ran");
    assert_eq!(j_ck.to_bits(), j_ref.to_bits(), "misfit drifted");
    assert!(
        g_ck.as_slice()
            .iter()
            .zip(g_ref.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "checkpointed gradient drifted from store-all"
    );
    let grid_bytes = 8 * n * n * n;
    SeismicMeasured {
        n,
        steps,
        storeall_s,
        checkpointed_s,
        // ~15 grids of fixed working set: 3 rolling λ, 2 cursor-state,
        // 4 stepper-workspace, 6 adjoint-workspace grids.
        peak_mem_bytes: report.peak_snapshot_bytes + 15 * grid_bytes,
        dense_mem_bytes: (steps + 1) * grid_bytes * 2, // trajectory + λ vector
        recompute_ratio: report.recompute_ratio(),
        budget: report.budget,
    }
}

/// The batched multi-shot gradient vs N sequential `gradient` calls on
/// the same pool: the batch pays the adjoint transform, the tune-cache
/// hit + schedule recompile, and workspace compilation once per survey
/// instead of once per shot, then dispatches shots under the perf-model's
/// chosen strategy. Outputs are asserted bitwise-identical in-bench.
struct BatchMeasured {
    n: usize,
    steps: usize,
    shots: usize,
    sequential_s: f64,
    batched_s: f64,
    strategy: String,
    /// Per-shot request latencies (one timed `gradient` call each) rolled
    /// into the same histogram shape the serve daemon exports — the bench
    /// counterpart of `serve.request_ns`.
    request_latency: perforad_obs::HistogramSnapshot,
}

fn measure_batch(
    n: usize,
    steps: usize,
    shots: usize,
    pool: &ThreadPool,
    reps: usize,
) -> BatchMeasured {
    let cfg = SeismicConfig { n, steps, d: 0.1 };
    let base = ricker(steps);
    let c0 = Grid::from_fn(&[n; 3], |ix| 0.8 + 0.4 * (ix[2] as f64 / n as f64));
    let mut batch = ShotBatch::new();
    for k in 0..shots {
        let scale = 1.0 + 0.2 * k as f64;
        batch.push(
            base.iter().map(|s| s * scale).collect(),
            Grid::from_fn(&[n; 3], |ix| {
                1e-3 * ((ix[0] + 2 * ix[1] + ix[2] + k) as f64).sin()
            }),
        );
    }
    let mut seq = None;
    let sequential_s = time_best(reps, || {
        seq = Some(
            (0..shots)
                .map(|k| gradient_with_pool(&cfg, &c0, &batch.observed[k], &batch.sources[k], pool))
                .collect::<Vec<_>>(),
        );
    });
    let mut batched = None;
    let batched_s = time_best(reps, || {
        batched = Some(gradient_batch_with(
            &cfg,
            &c0,
            &batch,
            &BatchOptions::default(),
            pool,
        ));
    });
    let batched = batched.expect("batched gradients ran");
    let seq = seq.expect("sequential gradients ran");
    // One more warm pass, timed per shot: the percentile view of what a
    // client of the gradient service would observe per request.
    let latencies: Vec<u64> = (0..shots)
        .map(|k| {
            let t0 = std::time::Instant::now();
            gradient_with_pool(&cfg, &c0, &batch.observed[k], &batch.sources[k], pool);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    let request_latency = perforad_obs::HistogramSnapshot::from_values(&latencies);
    for (k, (j, g)) in seq.iter().enumerate() {
        assert_eq!(
            batched.misfits[k].to_bits(),
            j.to_bits(),
            "shot {k}: batched misfit drifted"
        );
        assert!(
            batched.gradients[k]
                .as_slice()
                .iter()
                .zip(g.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "shot {k}: batched gradient drifted from sequential"
        );
    }
    BatchMeasured {
        n,
        steps,
        shots,
        sequential_s,
        batched_s,
        strategy: format!("{:?}", batched.strategy),
        request_latency,
    }
}

/// `(case, label, seconds)` triples parsed from a bench JSON document.
fn flatten(doc: &Value) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let Some(cases) = doc.get("cases").and_then(Value::as_array) else {
        return out;
    };
    for case in cases {
        let (Some(name), Some(series)) = (
            case.get("name").and_then(Value::as_str),
            case.get("series").and_then(Value::as_array),
        ) else {
            continue;
        };
        for s in series {
            if let (Some(label), Some(secs)) = (
                s.get("label").and_then(Value::as_str),
                s.get("seconds").and_then(Value::as_f64),
            ) {
                out.push((name.to_string(), label.to_string(), secs));
            }
        }
    }
    out
}

fn lookup(series: &[(String, String, f64)], case: &str, label: &str) -> Option<f64> {
    series
        .iter()
        .find(|(c, l, _)| c == case && l == label)
        .map(|&(_, _, s)| s)
}

/// Diff current against baseline; returns human-readable regression lines.
fn gate(
    current: &[(String, String, f64)],
    baseline: &[(String, String, f64)],
    tol: f64,
    floor_s: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for (case, label, secs) in current {
        // Each case normalizes against its own reference series: the
        // serial interpreter for the kernel cases, the dense store-all
        // gradient for the seismic time loop, the sequential per-shot
        // loop for the batched survey.
        let reference = [
            "interpreter_serial",
            "storeall_gradient",
            "sequential_gradient",
        ]
        .into_iter()
        .find(|r| lookup(current, case, r).is_some())
        .unwrap_or("interpreter_serial");
        if label == reference {
            continue;
        }
        let (Some(cur_ref), Some(base_ref), Some(base_secs)) = (
            lookup(current, case, reference),
            lookup(baseline, case, reference),
            lookup(baseline, case, label),
        ) else {
            continue; // new case/series: nothing to regress against
        };
        if *secs < floor_s || cur_ref <= 0.0 || base_ref <= 0.0 || base_secs <= 0.0 {
            continue;
        }
        let cur_norm = secs / cur_ref;
        let base_norm = base_secs / base_ref;
        if cur_norm > base_norm * (1.0 + tol) {
            regressions.push(format!(
                "{case}/{label}: {:.3}x of {reference}, baseline {:.3}x \
                 (+{:.0}% > {:.0}% allowed)",
                cur_norm,
                base_norm,
                (cur_norm / base_norm - 1.0) * 100.0,
                tol * 100.0
            ));
        }
    }
    regressions
}

fn main() {
    let n = env_size("PERFORAD_N", 48);
    let nb = env_size("PERFORAD_N_BURGERS", 1 << 18);
    // The seismic time loop: ≥4× the 12-step example sweep by default.
    let sn = env_size("PERFORAD_SEISMIC_N", 20);
    let ssteps = env_size("PERFORAD_SEISMIC_STEPS", 48);
    // The batched survey: small shots whose per-call setup (adjoint
    // transform + tune-cache hit + recompile) dominates — the regime the
    // batch API amortizes.
    let shots = env_size("PERFORAD_SHOTS", 8);
    let bn = env_size("PERFORAD_BATCH_N", 12);
    let bsteps = env_size("PERFORAD_BATCH_STEPS", 24);
    let reps = env_size("PERFORAD_SAMPLES", 5);
    let threads = env_size(
        "PERFORAD_THREADS",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2),
    );
    // A bench-scale seismic sweep fits comfortably in host RAM, where
    // the tuner would (correctly) pick store-all and measure nothing
    // interesting. Model the memory-constrained regime the subsystem
    // exists for: allow snapshots a quarter of the dense trajectory, so
    // the tuner must pick a real checkpoint schedule. An operator-set
    // `PERFORAD_MEM_BUDGET_BYTES` wins; set here, before any worker
    // thread exists (setenv after threads spawn is unsound).
    if std::env::var_os("PERFORAD_MEM_BUDGET_BYTES").is_none() {
        let dense = (ssteps + 1) * 2 * 8 * sn * sn * sn;
        std::env::set_var("PERFORAD_MEM_BUDGET_BYTES", (dense / 4).to_string());
    }
    let pool = ThreadPool::new(threads);

    let cases = vec![
        measure(Case::wave(n), &pool, reps),
        measure(Case::burgers(nb), &pool, reps),
    ];

    let mut case_json = Vec::new();
    for m in &cases {
        println!(
            "\n## {} adjoint ({} points, {} threads)",
            m.name, m.points, threads
        );
        for (label, secs) in &m.series {
            println!("{label:<24} {secs:>12.6} s");
        }
        println!(
            "tuned config: {}{}",
            m.tuned_config,
            if m.tuned_cache_hit {
                " [cache hit]"
            } else {
                ""
            }
        );
        let by_label = |label: &str| {
            m.series
                .iter()
                .find(|(l, _)| *l == label)
                .map(|&(_, s)| s)
                .expect("series label present")
        };
        let interp = by_label("interpreter_serial");
        let rows = by_label("rows_serial");
        println!(
            "rows speedup vs interpreter (serial): {:.2}x",
            interp / rows
        );
        let maybe_jit = m.series.iter().find(|(l, _)| *l == "jit").map(|&(_, s)| s);
        if let (Some(jit), Some(ms), Some(hit)) = (maybe_jit, m.jit_compile_ms, m.jit_cache_hit) {
            let fused_rows = by_label("fused_rows");
            println!("jit speedup vs fused rows: {:.2}x", fused_rows / jit);
            println!(
                "jit artifacts: {} ({ms:.0} ms compiling)",
                if hit { "[cache hit]" } else { "compiled" }
            );
        }
        let series: Vec<String> = m
            .series
            .iter()
            .map(|(l, s)| format!("{{\"label\":{},\"seconds\":{s}}}", json_escape(l)))
            .collect();
        let jit_json = match (m.jit_compile_ms, m.jit_cache_hit) {
            (Some(ms), Some(hit)) => {
                format!(",\"jit_compile_ms\":{ms},\"jit_cache_hit\":{hit}")
            }
            _ => String::new(),
        };
        case_json.push(format!(
            "{{\"name\":{},\"points\":{},\"series\":[{}],\"rows_speedup_serial\":{}{jit_json},\
             \"tuned_config\":{},\"tuned_cache_hit\":{}}}",
            json_escape(m.name),
            m.points,
            series.join(","),
            interp / rows,
            json_escape(&m.tuned_config),
            m.tuned_cache_hit
        ));
    }
    // The checkpointed seismic time loop (the two gradient paths are
    // asserted bitwise-identical inside the measurement).
    let seismic = measure_seismic(sn, ssteps, reps.min(3));
    println!(
        "\n## seismic_long gradient ({}³ grid, {} steps, tuned ckpt budget {})",
        seismic.n, seismic.steps, seismic.budget
    );
    println!("{:<24} {:>12.6} s", "storeall_gradient", seismic.storeall_s);
    println!(
        "{:<24} {:>12.6} s",
        "checkpointed_gradient", seismic.checkpointed_s
    );
    println!(
        "checkpointed peak mem: {:.1} MiB vs {:.1} MiB dense ({:.1}x less), \
         recompute ratio {:.2}",
        seismic.peak_mem_bytes as f64 / (1 << 20) as f64,
        seismic.dense_mem_bytes as f64 / (1 << 20) as f64,
        seismic.dense_mem_bytes as f64 / seismic.peak_mem_bytes as f64,
        seismic.recompute_ratio
    );
    case_json.push(format!(
        "{{\"name\":\"seismic_long\",\"points\":{},\"series\":[\
         {{\"label\":\"storeall_gradient\",\"seconds\":{}}},\
         {{\"label\":\"checkpointed_gradient\",\"seconds\":{}}}],\
         \"peak_mem_bytes\":{},\"dense_mem_bytes\":{},\
         \"recompute_ratio\":{},\"ckpt_budget\":{}}}",
        (seismic.n * seismic.n * seismic.n) as u64 * seismic.steps as u64,
        seismic.storeall_s,
        seismic.checkpointed_s,
        seismic.peak_mem_bytes,
        seismic.dense_mem_bytes,
        seismic.recompute_ratio,
        seismic.budget
    ));

    // The batched multi-shot survey (bitwise-asserted against the
    // sequential per-shot loop inside the measurement).
    let bm = measure_batch(bn, bsteps, shots, &pool, reps.min(3));
    println!(
        "\n## seismic_batch gradients ({} shots, {}³ grid, {} steps, {} threads)",
        bm.shots, bm.n, bm.steps, threads
    );
    println!("{:<24} {:>12.6} s", "sequential_gradient", bm.sequential_s);
    println!("{:<24} {:>12.6} s", "batched_gradient", bm.batched_s);
    println!(
        "batched: {:.2}x sequential, {:.1} shots/s (strategy {})",
        bm.sequential_s / bm.batched_s,
        bm.shots as f64 / bm.batched_s,
        bm.strategy
    );
    println!(
        "per-request latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        bm.request_latency.p50 as f64 / 1e6,
        bm.request_latency.p95 as f64 / 1e6,
        bm.request_latency.p99 as f64 / 1e6,
        bm.request_latency.max as f64 / 1e6,
    );
    case_json.push(format!(
        "{{\"name\":\"seismic_batch\",\"points\":{},\"series\":[\
         {{\"label\":\"sequential_gradient\",\"seconds\":{}}},\
         {{\"label\":\"batched_gradient\",\"seconds\":{}}}],\
         \"shots_per_sec\":{},\"batch_speedup\":{},\"batch_strategy\":{},\
         \"request_latency_ns\":{}}}",
        (bm.n * bm.n * bm.n) as u64 * bm.steps as u64 * bm.shots as u64,
        bm.sequential_s,
        bm.batched_s,
        bm.shots as f64 / bm.batched_s,
        bm.sequential_s / bm.batched_s,
        json_escape(&bm.strategy),
        bm.request_latency.to_json()
    ));

    // The observability rollup: when recording is on (PERFORAD_TRACE=1)
    // the whole run — tuner search, JIT builds, checkpointed sweeps,
    // parallel regions — has been recording spans. Summarize them into
    // the payload, and export the raw Chrome trace when
    // PERFORAD_TRACE_OUT names a path.
    let trace_json = if perforad_obs::enabled() {
        let events = perforad_obs::collect_events();
        let report = perforad_obs::TraceReport::build(&events, 10);
        println!("\n{report}");
        match perforad_obs::write_trace_if_configured(&events) {
            Ok(Some(p)) => println!("wrote Chrome trace: {}", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("Chrome trace export failed: {e}"),
        }
        format!(",\"trace_report\":{}", report.to_json())
    } else {
        String::new()
    };

    let payload = format!(
        "{{\"bench\":\"exec_lowering\",\"threads\":{threads},\"samples\":{reps},\
         \"wave_n\":{n},\"burgers_n\":{nb},\"seismic_n\":{sn},\"seismic_steps\":{ssteps},\
         \"shots\":{shots},\"batch_n\":{bn},\"batch_steps\":{bsteps},\
         \"cases\":[{}]{trace_json}}}",
        case_json.join(",")
    );
    let path =
        std::env::var("PERFORAD_BENCH_JSON").unwrap_or_else(|_| "BENCH_exec.json".to_string());
    std::fs::write(&path, &payload).expect("write bench JSON");
    println!("\nwrote {path}");

    // Regression gate against the committed baseline.
    let baseline_path = std::env::var("PERFORAD_BENCH_BASELINE")
        .unwrap_or_else(|_| "BENCH_baseline.json".to_string());
    let Ok(baseline_text) = std::fs::read_to_string(&baseline_path) else {
        println!("no baseline at {baseline_path}; gate skipped");
        return;
    };
    let baseline = json::parse(&baseline_text)
        .unwrap_or_else(|e| panic!("baseline {baseline_path} is not valid JSON: {e}"));
    let current = json::parse(&payload).expect("own payload parses");
    // Normalized ratios only compare within one problem shape: a run at
    // other sizes (or another thread count) measures different physics.
    for knob in [
        "wave_n",
        "burgers_n",
        "seismic_n",
        "seismic_steps",
        "shots",
        "batch_n",
        "batch_steps",
        "threads",
    ] {
        let (b, c) = (
            baseline.get(knob).and_then(Value::as_i64),
            current.get(knob).and_then(Value::as_i64),
        );
        if b != c {
            println!(
                "baseline {baseline_path} was recorded at {knob}={b:?}, this run at {c:?}; \
                 gate skipped"
            );
            return;
        }
    }
    let tol = std::env::var("PERFORAD_BENCH_GATE_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let floor_s = env_size("PERFORAD_BENCH_GATE_FLOOR_US", 100) as f64 * 1e-6;
    let regressions = gate(&flatten(&current), &flatten(&baseline), tol, floor_s);
    if regressions.is_empty() {
        println!(
            "bench gate vs {baseline_path}: OK (tol {:.0}%)",
            tol * 100.0
        );
    } else {
        eprintln!("\nbench gate vs {baseline_path}: REGRESSIONS");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
