//! Figure 10: absolute wave-equation runtimes on Broadwell (5 bars).
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 64);
    let mut case = perforad_bench::Case::wave(n);
    let machine = perforad_perfmodel::broadwell();
    perforad_bench::run_runtimes(
        &mut case,
        &machine,
        1000,
        "Figure 10: Runtimes of the Wave Equation on Broadwell",
        false,
    );
}
