//! Figure 14: absolute wave-equation runtimes on KNL.
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 64);
    let mut case = perforad_bench::Case::wave(n);
    let machine = perforad_perfmodel::knl();
    perforad_bench::run_runtimes(
        &mut case,
        &machine,
        1000,
        "Figure 14: Runtimes of the Wave Equation on KNL",
        false,
    );
}
