//! Figure 13: speedups of the Burgers solvers, KNL, 1–256 threads.
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 2_000_000);
    let mut case = perforad_bench::Case::burgers(n);
    let machine = perforad_perfmodel::knl();
    perforad_bench::run_scaling(
        &mut case,
        &machine,
        1_000_000_000,
        "Figure 13: Scalability of the Burgers Equation on KNL",
    );
}
