//! Figure 12: speedups of the wave-equation solvers, KNL, 1–64 threads.
fn main() {
    let n = perforad_bench::env_size("PERFORAD_N", 64);
    let mut case = perforad_bench::Case::wave(n);
    let machine = perforad_perfmodel::knl();
    perforad_bench::run_scaling(
        &mut case,
        &machine,
        1000,
        "Figure 12: Scalability of the Wave Equation on KNL",
    );
}
