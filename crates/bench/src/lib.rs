//! # perforad-bench
//!
//! Benchmark harness regenerating every figure of the ICPP 2019 evaluation
//! (Figs. 8–15), the §3.3.4 loop-nest-count table, and the §3.6
//! verification. Each paper figure has a binary (`fig08_…` … `fig15_…`);
//! criterion micro-benches cover kernels, the transformation itself, and
//! the ablations listed in DESIGN.md.
//!
//! Hardware note: the paper's Broadwell/KNL machines are substituted by
//! (a) measured sweeps on this host and (b) model projections from
//! `perforad-perfmodel` at paper scale. Grid sizes default small so the
//! harness completes in CI; override with `PERFORAD_N` / `PERFORAD_STEPS`.

use perforad_core::{ActivityMap, Adjoint, AdjointOptions, LoopNest};
use perforad_exec::{
    compile_adjoint, compile_nest, run_parallel, run_parallel_rows, run_scatter_atomic, run_serial,
    run_serial_rows, Binding, Plan, ThreadPool, Workspace,
};
use perforad_pde::{burgers, heat2d, wave3d};
use perforad_perfmodel::{KernelProfile, Machine};
use perforad_sched::{compile_schedule, run_schedule, SchedOptions, Schedule};
use perforad_symbolic::Symbol;
use std::collections::BTreeMap;

pub mod micro;

// The timers live in `perforad-tune` (its empirical stage measures the
// same way this harness reports), re-exported here so existing callers
// keep their import paths.
pub use perforad_tune::timing::{time_best, time_once};

/// Environment-overridable problem size.
pub fn env_size(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Thread counts measured on this host (1 ..= 2×cores, doubling).
pub fn host_threads() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(2);
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= cores * 2 {
        v.push(t);
        t *= 2;
    }
    v.dedup();
    v
}

/// One benchmark scenario: primal + gather adjoint + scatter adjoint, all
/// compiled against a reusable workspace.
pub struct Case {
    pub name: &'static str,
    pub nest: LoopNest,
    pub adjoint: Adjoint,
    pub scatter: LoopNest,
    pub ws: Workspace,
    pub bind: Binding,
    pub primal_plan: Plan,
    pub adjoint_plan: Plan,
    pub scatter_plan: Plan,
    /// Fused + tiled schedule of the gather adjoint (one parallel region).
    pub schedule: Schedule,
    /// The same schedule with the vectorized row-executor lowering.
    pub schedule_rows: Schedule,
    pub sizes: BTreeMap<Symbol, i64>,
}

impl Case {
    fn build(
        name: &'static str,
        nest: LoopNest,
        act: &ActivityMap,
        ws: Workspace,
        bind: Binding,
    ) -> Case {
        let adjoint = nest
            .adjoint(act, &AdjointOptions::default())
            .expect("adjoint");
        let scatter = nest.scatter_adjoint(act).expect("scatter adjoint");
        let primal_plan = compile_nest(&nest, &ws, &bind).expect("primal plan");
        let adjoint_plan = compile_adjoint(&adjoint, &ws, &bind).expect("adjoint plan");
        let scatter_plan = compile_nest(&scatter, &ws, &bind).expect("scatter plan");
        let schedule =
            compile_schedule(&adjoint, &ws, &bind, &SchedOptions::default()).expect("schedule");
        let schedule_rows =
            compile_schedule(&adjoint, &ws, &bind, &SchedOptions::default().with_rows())
                .expect("rows schedule");
        let sizes = bind.sizes.clone();
        Case {
            name,
            nest,
            adjoint,
            scatter,
            ws,
            bind,
            primal_plan,
            adjoint_plan,
            scatter_plan,
            schedule,
            schedule_rows,
            sizes,
        }
    }

    /// The paper's wave-equation case at grid size `n³`.
    pub fn wave(n: usize) -> Case {
        let (ws, bind) = wave3d::workspace(n, 0.1);
        Case::build("wave3d", wave3d::nest(), &wave3d::activity(), ws, bind)
    }

    /// The paper's Burgers case with `n` cells.
    pub fn burgers(n: usize) -> Case {
        let (ws, bind) = burgers::workspace(n, 0.3, 0.1);
        Case::build("burgers1d", burgers::nest(), &burgers::activity(), ws, bind)
    }

    /// 2-D heat (Fig. 3's stencil).
    pub fn heat(n: usize) -> Case {
        let (ws, bind) = heat2d::workspace(n, 0.2);
        Case::build("heat2d", heat2d::nest(), &heat2d::activity(), ws, bind)
    }

    pub fn primal_serial(&mut self) -> f64 {
        let plan = self.primal_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_serial(&plan, ws).unwrap();
        })
    }

    pub fn primal_parallel(&mut self, pool: &ThreadPool) -> f64 {
        let plan = self.primal_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_parallel(&plan, ws, pool).unwrap();
        })
    }

    pub fn perforad_serial(&mut self) -> f64 {
        let plan = self.adjoint_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_serial(&plan, ws).unwrap();
        })
    }

    pub fn perforad_parallel(&mut self, pool: &ThreadPool) -> f64 {
        let plan = self.adjoint_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_parallel(&plan, ws, pool).unwrap();
        })
    }

    /// One adjoint sweep through the vectorized row executor, serially.
    pub fn perforad_serial_rows(&mut self) -> f64 {
        let plan = self.adjoint_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_serial_rows(&plan, ws).unwrap();
        })
    }

    /// One adjoint sweep through the vectorized row executor on the pool.
    pub fn perforad_parallel_rows(&mut self, pool: &ThreadPool) -> f64 {
        let plan = self.adjoint_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_parallel_rows(&plan, ws, pool).unwrap();
        })
    }

    /// One fused + tiled adjoint sweep with row-executor tiles.
    pub fn fused_parallel_rows(&mut self, pool: &ThreadPool) -> f64 {
        let schedule = self.schedule_rows.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_schedule(&schedule, ws, pool).unwrap();
        })
    }

    /// One fused + tiled adjoint sweep on the pool (single parallel region).
    pub fn fused_parallel(&mut self, pool: &ThreadPool) -> f64 {
        let schedule = self.schedule.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_schedule(&schedule, ws, pool).unwrap();
        })
    }

    pub fn scatter_serial(&mut self) -> f64 {
        let plan = self.scatter_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_serial(&plan, ws).unwrap();
        })
    }

    pub fn scatter_atomic(&mut self, pool: &ThreadPool) -> f64 {
        let plan = self.scatter_plan.clone();
        let ws = &mut self.ws;
        time_once(|| {
            run_scatter_atomic(&plan, ws, pool).unwrap();
        })
    }

    /// IR-derived profiles for the performance model.
    pub fn profiles(&self, paper_n: i64) -> (KernelProfile, KernelProfile, KernelProfile) {
        let mut sizes = self.sizes.clone();
        for v in sizes.values_mut() {
            *v = paper_n;
        }
        let p = perforad_perfmodel::profile(std::slice::from_ref(&self.nest), &sizes);
        let a = perforad_perfmodel::profile(&self.adjoint.nests, &sizes);
        let s = perforad_perfmodel::profile(std::slice::from_ref(&self.scatter), &sizes);
        (p, a, s)
    }
}

/// A labelled `(threads, seconds)` series.
pub struct Series {
    pub label: String,
    pub rows: Vec<(usize, f64)>,
}

impl Series {
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let t1 = self.rows.first().map(|r| r.1).unwrap_or(1.0);
        self.rows.iter().map(|&(t, s)| (t, t1 / s)).collect()
    }
}

/// Optionally mirror figure data as JSON (set `PERFORAD_JSON=1`), so plots
/// can be regenerated outside the terminal. `payload` must already be a
/// serialised JSON value (the workspace builds offline, so JSON is emitted
/// by hand rather than through serde).
fn maybe_json(title: &str, payload: String) {
    if std::env::var("PERFORAD_JSON").is_ok() {
        println!(
            "JSON {{\"figure\":{},\"data\":{payload}}}",
            json_escape(title)
        );
    }
}

/// A JSON string literal. Rust's `Debug` formatting is *not* used: it
/// emits `\u{9}`-style braced escapes, which are invalid JSON. Public so
/// the bench binaries (which emit machine-readable JSON files) share one
/// escaper — the implementation lives beside the workspace's JSON reader
/// in `perforad_tune::json`, so escape and parse round-trip by
/// construction.
pub fn json_escape(s: &str) -> String {
    perforad_tune::json::escape(s)
}

fn json_rows(rows: &[(usize, f64)]) -> String {
    let cells: Vec<String> = rows.iter().map(|(t, s)| format!("[{t},{s}]")).collect();
    format!("[{}]", cells.join(","))
}

/// Print a speedup table like the paper's scaling figures.
pub fn print_speedup_figure(title: &str, series: &[Series]) {
    let items: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "{{\"label\":{},\"rows\":{}}}",
                json_escape(&s.label),
                json_rows(&s.rows)
            )
        })
        .collect();
    maybe_json(title, format!("[{}]", items.join(",")));
    println!("\n## {title}");
    print!("{:<10}", "threads");
    for s in series {
        print!("{:>14}", s.label);
    }
    println!("{:>10}", "ideal");
    let threads: Vec<usize> = series[0].rows.iter().map(|r| r.0).collect();
    for (row, &t) in threads.iter().enumerate() {
        print!("{t:<10}");
        for s in series {
            let sp = s.speedups()[row].1;
            print!("{sp:>14.2}");
        }
        println!("{t:>10}");
    }
}

/// Print absolute-runtime bars like Figs. 10/11/14/15.
pub fn print_runtime_figure(title: &str, bars: &[(String, f64)]) {
    let items: Vec<String> = bars
        .iter()
        .map(|(l, s)| format!("[{},{s}]", json_escape(l)))
        .collect();
    maybe_json(title, format!("[{}]", items.join(",")));
    println!("\n## {title}");
    for (label, secs) in bars {
        println!("{label:<24} {secs:>10.4} s");
    }
}

/// Model-projected series on a paper machine.
pub fn model_series(m: &Machine, label: &str, p: &KernelProfile, threads: &[usize]) -> Series {
    Series {
        label: label.to_string(),
        rows: perforad_perfmodel::speedup_series(m, p, threads)
            .into_iter()
            .map(|(t, secs, _)| (t, secs))
            .collect(),
    }
}

/// Thread sweep used by the paper for a machine.
pub fn paper_threads(m: &Machine) -> Vec<usize> {
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= m.threads_max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != m.threads_max {
        v.push(m.threads_max);
    }
    v
}

/// Full scaling figure: measured host sweep + model projection at paper
/// scale (Figs. 8, 9, 12, 13).
pub fn run_scaling(case: &mut Case, machine: &Machine, paper_n: i64, figure: &str) {
    println!("schedule: {}", case.schedule.describe());
    // Measured on this host.
    let threads = host_threads();
    let mut primal = Series {
        label: "Primal".into(),
        rows: vec![],
    };
    let mut perforad = Series {
        label: "PerforAD".into(),
        rows: vec![],
    };
    let mut rows_exec = Series {
        label: "Rows".into(),
        rows: vec![],
    };
    let mut fused = Series {
        label: "Fused".into(),
        rows: vec![],
    };
    let mut fused_rows = Series {
        label: "FusedRows".into(),
        rows: vec![],
    };
    let mut atomics = Series {
        label: "Atomics".into(),
        rows: vec![],
    };
    for &t in &threads {
        let pool = ThreadPool::new(t);
        if t == 1 {
            primal.rows.push((
                t,
                time_best(2, || {
                    let p = case.primal_plan.clone();
                    run_serial(&p, &mut case.ws).unwrap();
                }),
            ));
            perforad.rows.push((
                t,
                time_best(2, || {
                    let p = case.adjoint_plan.clone();
                    run_serial(&p, &mut case.ws).unwrap();
                }),
            ));
            rows_exec.rows.push((
                t,
                time_best(2, || {
                    let p = case.adjoint_plan.clone();
                    run_serial_rows(&p, &mut case.ws).unwrap();
                }),
            ));
            atomics.rows.push((
                t,
                time_best(2, || {
                    let p = case.scatter_plan.clone();
                    run_scatter_atomic(&p, &mut case.ws, &pool).unwrap();
                }),
            ));
        } else {
            primal.rows.push((
                t,
                time_best(2, || {
                    let p = case.primal_plan.clone();
                    run_parallel(&p, &mut case.ws, &pool).unwrap();
                }),
            ));
            perforad.rows.push((
                t,
                time_best(2, || {
                    let p = case.adjoint_plan.clone();
                    run_parallel(&p, &mut case.ws, &pool).unwrap();
                }),
            ));
            rows_exec.rows.push((
                t,
                time_best(2, || {
                    let p = case.adjoint_plan.clone();
                    run_parallel_rows(&p, &mut case.ws, &pool).unwrap();
                }),
            ));
            atomics.rows.push((
                t,
                time_best(2, || {
                    let p = case.scatter_plan.clone();
                    run_scatter_atomic(&p, &mut case.ws, &pool).unwrap();
                }),
            ));
        }
        fused.rows.push((
            t,
            time_best(2, || {
                let s = case.schedule.clone();
                run_schedule(&s, &mut case.ws, &pool).unwrap();
            }),
        ));
        fused_rows.rows.push((
            t,
            time_best(2, || {
                let s = case.schedule_rows.clone();
                run_schedule(&s, &mut case.ws, &pool).unwrap();
            }),
        ));
    }
    print_speedup_figure(
        &format!("{figure} [measured on host, {}]", case.name),
        &[primal, perforad, rows_exec, fused, fused_rows, atomics],
    );

    // Model projection at paper scale.
    let (pp, pa, ps) = case.profiles(paper_n);
    let tl = paper_threads(machine);
    let m_primal = model_series(machine, "Primal", &pp, &tl);
    let m_perforad = model_series(machine, "PerforAD", &pa, &tl);
    let m_atomics = model_series(machine, "Atomics", &ps, &tl);
    // Conventional serial adjoint never scales (Tapenade output is serial).
    let serial_t = perforad_perfmodel::predict(machine, &ps_noatomic(&ps), 1);
    let m_adjoint = Series {
        label: "Adjoint".into(),
        rows: tl.iter().map(|&t| (t, serial_t)).collect(),
    };
    print_speedup_figure(
        &format!("{figure} [model projection, {}]", machine.name),
        &[m_primal, m_adjoint, m_atomics, m_perforad],
    );
}

fn ps_noatomic(p: &KernelProfile) -> KernelProfile {
    let mut q = *p;
    q.atomics_per_point = 0.0;
    q
}

/// Absolute-runtime figure: five bars, measured + model (Figs. 10, 11, 14, 15).
pub fn run_runtimes(
    case: &mut Case,
    machine: &Machine,
    paper_n: i64,
    figure: &str,
    stack_mode_serial: bool,
) {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(2);
    let pool = ThreadPool::new(cores);
    let bars = vec![
        ("Primal Serial".to_string(), case.primal_serial()),
        ("PerforAD Serial".to_string(), case.perforad_serial()),
        ("Rows Serial".to_string(), case.perforad_serial_rows()),
        ("Adjoint Serial".to_string(), case.scatter_serial()),
        ("Primal Parallel".to_string(), case.primal_parallel(&pool)),
        (
            "PerforAD Parallel".to_string(),
            case.perforad_parallel(&pool),
        ),
        (
            "Rows Parallel".to_string(),
            case.perforad_parallel_rows(&pool),
        ),
        ("Fused Parallel".to_string(), case.fused_parallel(&pool)),
        (
            "Fused Rows Parallel".to_string(),
            case.fused_parallel_rows(&pool),
        ),
        ("Atomics Parallel".to_string(), case.scatter_atomic(&pool)),
    ];
    print_runtime_figure(
        &format!("{figure} [measured on host, {}]", case.name),
        &bars,
    );
    println!("schedule: {}", case.schedule.describe());

    let (pp, pa, ps) = case.profiles(paper_n);
    let serial_scatter = if stack_mode_serial {
        // Tapenade stack mode: min/max intermediates pushed/popped (16 B/pt).
        perforad_perfmodel::with_stack(ps_noatomic(&ps), 16.0)
    } else {
        ps_noatomic(&ps)
    };
    let best = |p: &KernelProfile| {
        paper_threads(machine)
            .iter()
            .map(|&t| perforad_perfmodel::predict(machine, p, t))
            .fold(f64::MAX, f64::min)
    };
    let bars = vec![
        (
            "Primal Serial".to_string(),
            perforad_perfmodel::predict(machine, &pp, 1),
        ),
        (
            "PerforAD Serial".to_string(),
            perforad_perfmodel::predict(machine, &pa, 1),
        ),
        (
            "Adjoint Serial".to_string(),
            perforad_perfmodel::predict(machine, &serial_scatter, 1),
        ),
        ("Primal Parallel".to_string(), best(&pp)),
        ("PerforAD Parallel".to_string(), best(&pa)),
        ("Atomics best".to_string(), best(&ps)),
    ];
    print_runtime_figure(
        &format!("{figure} [model projection, {}]", machine.name),
        &bars,
    );
    let ratio = best(&ps).min(perforad_perfmodel::predict(machine, &serial_scatter, 1)) / best(&pa);
    println!("PerforAD parallel vs best conventional adjoint: {ratio:.1}x");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_case_builds_and_runs() {
        let mut case = Case::wave(16);
        let t = case.primal_serial();
        assert!(t >= 0.0);
        let pool = ThreadPool::new(2);
        let _ = case.perforad_parallel(&pool);
        let _ = case.scatter_atomic(&pool);
        let _ = case.fused_parallel(&pool);
        assert_eq!(case.adjoint.nest_count(), 53);
        // All 53 disjoint nests fuse into a single parallel region.
        assert_eq!(case.schedule.group_count(), 1);
        assert_eq!(case.schedule.max_fused(), 53);
    }

    #[test]
    fn fused_schedule_matches_unfused_adjoint() {
        let mut c1 = Case::wave(14);
        let mut c2 = Case::wave(14);
        let pool = ThreadPool::new(3);
        let plan = c1.adjoint_plan.clone();
        run_parallel(&plan, &mut c1.ws, &pool).unwrap();
        let s = c2.schedule.clone();
        run_schedule(&s, &mut c2.ws, &pool).unwrap();
        for arr in ["u_1_b", "u_2_b"] {
            assert_eq!(c1.ws.grid(arr).max_abs_diff(c2.ws.grid(arr)), 0.0, "{arr}");
        }
    }

    #[test]
    fn profiles_scale_with_paper_size() {
        let case = Case::burgers(1024);
        let (p, a, s) = case.profiles(1_000_000);
        assert!(p.points > 900_000.0);
        assert!(a.flops_per_point > p.flops_per_point);
        assert!(s.atomics_per_point > 0.0);
        assert_eq!(p.atomics_per_point, 0.0);
    }

    #[test]
    fn json_escape_emits_valid_json_for_control_chars() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_escape("tab\there"), "\"tab\\there\"");
        // Braced `\u{1b}` Debug escapes are invalid JSON; 4-hex form is.
        assert_eq!(json_escape("\u{1b}[0m"), "\"\\u001b[0m\"");
    }

    #[test]
    fn host_threads_start_at_one() {
        let t = host_threads();
        assert_eq!(t[0], 1);
        assert!(t.len() >= 2);
    }

    #[test]
    fn series_speedups_normalise() {
        let s = Series {
            label: "x".into(),
            rows: vec![(1, 4.0), (2, 2.0), (4, 1.0)],
        };
        assert_eq!(s.speedups(), vec![(1, 1.0), (2, 2.0), (4, 4.0)]);
    }
}
