//! Rust back-end: generates compilable, chunk-parallelisable kernels.
//!
//! This is the "new back-ends are easy to add" design point of PerforAD
//! (§3.1), and it powers the static-kernel path of the benchmarks: the
//! generated functions are checked into `perforad-pde`, golden-tested
//! against this generator, and compiled by rustc at full optimisation —
//! playing the role of the Intel C compiler in the paper's setup.
//!
//! Each nest becomes `fn {name}_nest{k}(lo0, hi0, sizes…, params…, outs…,
//! ins…, dims)`, taking the outermost counter range as arguments so a
//! harness can chunk it across threads; `{name}` runs every nest serially.

use perforad_core::{AssignOp, LoopNest};
use perforad_symbolic::{subst, Expr, Func, Idx, Node, Number, Symbol};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render an index expression as Rust (i64 arithmetic over counters/sizes).
fn r_idx(ix: &Idx) -> String {
    format!("{ix}")
}

fn r_number(n: &Number) -> String {
    match n {
        Number::Int(i) => format!("{i}f64"),
        Number::Rat(r) => format!("({}f64/{}f64)", r.numer(), r.denom()),
        Number::Float(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}f64")
            }
        }
    }
}

/// Render a linear index for an access: `((i - 1)*s0 + (j)*s1 + (k)) as usize`.
fn r_access_index(indices: &[Idx]) -> String {
    if indices.len() == 1 {
        return format!("({}) as usize", r_idx(&indices[0]));
    }
    let mut parts = Vec::with_capacity(indices.len());
    let last = indices.len() - 1;
    for (d, ix) in indices.iter().enumerate() {
        if d == last {
            parts.push(format!("({})", r_idx(ix)));
        } else {
            parts.push(format!("({})*s{d}", r_idx(ix)));
        }
    }
    format!("({}) as usize", parts.join(" + "))
}

/// Render an expression as Rust source (all scalars `f64`).
pub fn r_expr(e: &Expr) -> String {
    match e.node() {
        Node::Num(n) => r_number(n),
        Node::Sym(s) => format!("({} as f64)", s.name()),
        Node::Access(a) => format!("{}[{}]", a.array.name(), r_access_index(&a.indices)),
        Node::Add(ts) => {
            let parts: Vec<String> = ts.iter().map(r_expr).collect();
            format!("({})", parts.join(" + "))
        }
        Node::Mul(fs) => {
            let parts: Vec<String> = fs.iter().map(r_expr).collect();
            format!("({})", parts.join("*"))
        }
        Node::Pow(b, x) => match x.as_int() {
            Some(k) if i32::try_from(k).is_ok() => format!("{}.powi({k})", r_expr(b)),
            _ => format!("{}.powf({})", r_expr(b), r_expr(x)),
        },
        Node::Call(f, args) => {
            let a0 = r_expr(&args[0]);
            match f {
                Func::Sin => format!("{a0}.sin()"),
                Func::Cos => format!("{a0}.cos()"),
                Func::Tan => format!("{a0}.tan()"),
                Func::Exp => format!("{a0}.exp()"),
                Func::Ln => format!("{a0}.ln()"),
                Func::Sqrt => format!("{a0}.sqrt()"),
                Func::Abs => format!("{a0}.abs()"),
                Func::Sign => format!(
                    "(if {a0} > 0.0 {{ 1.0 }} else if {a0} < 0.0 {{ -1.0 }} else {{ 0.0 }})"
                ),
                Func::Tanh => format!("{a0}.tanh()"),
                Func::Max => format!("{a0}.max({})", r_expr(&args[1])),
                Func::Min => format!("{a0}.min({})", r_expr(&args[1])),
            }
        }
        Node::Select(c, a, b) => format!(
            "(if {} {} {} {{ {} }} else {{ {} }})",
            r_expr(&c.lhs),
            c.rel.symbol(),
            r_expr(&c.rhs),
            r_expr(a),
            r_expr(b)
        ),
        Node::UFun(app) => {
            let args: Vec<String> = app.args.iter().map(r_expr).collect();
            format!("{}({})", app.name, args.join(", "))
        }
        Node::UDeriv(app, wrt) => {
            let args: Vec<String> = app.args.iter().map(r_expr).collect();
            format!("{}_d{}({})", app.name, app.params[*wrt], args.join(", "))
        }
    }
}

struct Signature {
    outputs: Vec<Symbol>,
    inputs: Vec<Symbol>,
    params: Vec<Symbol>,
    sizes: Vec<Symbol>,
    rank: usize,
}

fn signature(nests: &[LoopNest]) -> Signature {
    let mut outputs = BTreeSet::new();
    let mut inputs = BTreeSet::new();
    let mut params = BTreeSet::new();
    let mut sizes = BTreeSet::new();
    let mut rank = 0usize;
    for nest in nests {
        rank = rank.max(nest.rank());
        outputs.extend(nest.outputs());
        inputs.extend(nest.inputs());
        params.extend(nest.parameters());
        sizes.extend(nest.bound_symbols());
    }
    for o in &outputs {
        inputs.remove(o);
    }
    Signature {
        outputs: outputs.into_iter().collect(),
        inputs: inputs.into_iter().collect(),
        params: params.into_iter().collect(),
        sizes: sizes.into_iter().collect(),
        rank,
    }
}

fn args_decl(sig: &Signature) -> String {
    let mut args: Vec<String> = vec!["lo0: i64".into(), "hi0: i64".into()];
    for s in &sig.sizes {
        args.push(format!("{}: i64", s.name()));
    }
    for p in &sig.params {
        args.push(format!("{}: f64", p.name()));
    }
    for o in &sig.outputs {
        args.push(format!("{}: &mut [f64]", o.name()));
    }
    for i in &sig.inputs {
        args.push(format!("{}: &[f64]", i.name()));
    }
    args.push(format!("dims: &[usize; {}]", sig.rank));
    args.join(", ")
}

fn args_call(sig: &Signature, lo: &str, hi: &str) -> String {
    let mut args: Vec<String> = vec![lo.to_string(), hi.to_string()];
    for s in &sig.sizes {
        args.push(s.name().to_string());
    }
    for p in &sig.params {
        args.push(p.name().to_string());
    }
    for o in &sig.outputs {
        args.push(o.name().to_string());
    }
    for i in &sig.inputs {
        args.push(i.name().to_string());
    }
    args.push("dims".into());
    args.join(", ")
}

/// Generate one nest function. The outermost loop runs `lo0..=hi0` clamped
/// to the nest bounds, so callers can chunk it across threads.
pub fn r_nest_fn(name: &str, nest: &LoopNest) -> String {
    let sig = signature(std::slice::from_ref(nest));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#[allow(non_snake_case, unused_variables, unused_parens, clippy::all)]"
    );
    let _ = writeln!(out, "pub fn {name}({}) {{", args_decl(&sig));
    // Strides.
    for d in 0..sig.rank.saturating_sub(1) {
        let terms: Vec<String> = (d + 1..sig.rank).map(|k| format!("dims[{k}]")).collect();
        let _ = writeln!(out, "    let s{d} = ({}) as i64;", terms.join("*"));
    }
    // Loops.
    let mut depth = 1usize;
    for (d, (c, b)) in nest.counters.iter().zip(&nest.bounds).enumerate() {
        let (lo, hi) = if d == 0 {
            (
                format!("({}).max(lo0)", r_idx(&b.lo)),
                format!("({}).min(hi0)", r_idx(&b.hi)),
            )
        } else {
            (r_idx(&b.lo), r_idx(&b.hi))
        };
        let _ = writeln!(out, "{}for {c} in {lo}..=({hi}) {{", "    ".repeat(depth));
        depth += 1;
    }
    let pad = "    ".repeat(depth);
    for s in &nest.body {
        let mut close_guard = false;
        if let Some(g) = &s.guard {
            let conds: Vec<String> = g
                .ranges
                .iter()
                .map(|(c, b)| format!("({}) <= {c} && {c} <= ({})", r_idx(&b.lo), r_idx(&b.hi)))
                .collect();
            let _ = writeln!(out, "{pad}if {} {{", conds.join(" && "));
            close_guard = true;
        }
        let inner_pad = if close_guard {
            format!("{pad}    ")
        } else {
            pad.clone()
        };
        let op = match s.op {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
        };
        let _ = writeln!(
            out,
            "{inner_pad}{}[{}] {op} {};",
            s.lhs.array.name(),
            r_access_index(&s.lhs.indices),
            r_expr(&s.rhs)
        );
        if close_guard {
            let _ = writeln!(out, "{pad}}}");
        }
    }
    for d in (1..depth).rev() {
        let _ = writeln!(out, "{}}}", "    ".repeat(d));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Generate a module with one function per nest plus a serial driver.
pub fn print_module(name: &str, nests: &[LoopNest]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by perforad-codegen (Rust back-end) — do not edit by hand."
    );
    let _ = writeln!(
        out,
        "// Regenerate with the `golden_rust` test in perforad-codegen.\n"
    );
    for (k, nest) in nests.iter().enumerate() {
        out.push_str(&r_nest_fn(&format!("{name}_nest{k}"), nest));
        let _ = writeln!(out);
    }
    // Serial driver over all nests with per-nest full outer ranges.
    let sig = signature(nests);
    let _ = writeln!(
        out,
        "#[allow(non_snake_case, unused_variables, unused_parens, clippy::all)]"
    );
    let _ = writeln!(out, "pub fn {name}({}) {{", args_decl(&sig));
    for (k, nest) in nests.iter().enumerate() {
        let nsig = signature(std::slice::from_ref(nest));
        let lo = format!("({}).max(lo0)", r_idx(&nest.bounds[0].lo));
        let hi = format!("({}).min(hi0)", r_idx(&nest.bounds[0].hi));
        let _ = writeln!(out, "    {name}_nest{k}({});", args_call(&nsig, &lo, &hi));
    }
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// JIT back-end: tile-granular, guard-hoisted `extern "C"` entry points.
//
// The functions above generate *build-time* kernels (checked into
// `perforad-pde`, idiomatic slices, symbolic sizes as arguments). The
// `perforad-jit` crate instead compiles *run-time* schedules: sizes and
// parameters are known, so they are baked in as constants, and each fused
// group's nests become self-contained `extern "C"` functions that take
// only an inclusive iteration box (so the tile-granular executors can
// drive arbitrary sub-boxes) and the group's array base pointers in plan
// slot order. Guards are hoisted into the loop bounds, and numeric
// constants are emitted via `f64::from_bits` so the compiled code is
// **bitwise identical** to the interpreter and row executor: the renderer
// mirrors the bytecode compiler's traversal (left-folded sums/products,
// `-1·x` as negation, `powi` for integer exponents, the VM's exact
// max/min/sign semantics).
// ---------------------------------------------------------------------------

use std::collections::BTreeMap;

/// Everything the JIT emitter needs to generate one fused group's module:
/// the group's nests (plan order) plus the resolved layout and bindings
/// the plan was compiled against.
pub struct JitGroupSpec<'a> {
    /// Symbol prefix; nest `k` becomes `{prefix}_n{k}`.
    pub prefix: &'a str,
    /// The group's loop nests, in the same order as the compiled plan's.
    pub nests: &'a [LoopNest],
    /// Array slot order of the plan (index = slot).
    pub arrays: &'a [Symbol],
    /// Shared extents of every array.
    pub dims: &'a [usize],
    /// Shared element strides.
    pub strides: &'a [usize],
    /// Zero-padding load semantics (the Padded boundary strategy).
    pub padded: bool,
    /// Apply per-statement CSE exactly as plan compilation does.
    pub cse: bool,
    /// Integer size bindings (loop bounds, guard bounds).
    pub sizes: &'a BTreeMap<Symbol, i64>,
    /// Floating-point parameter bindings, inlined as exact constants.
    pub params: &'a BTreeMap<Symbol, f64>,
}

/// Render an `f64` so the compiled constant is bit-exact — `from_bits`
/// round-trips every value (the decimal comment is for human readers).
fn exact_f64(v: f64) -> String {
    format!("f64::from_bits({:#018x}u64) /* {v} */", v.to_bits())
}

struct JitCtx<'a> {
    spec: &'a JitGroupSpec<'a>,
    counters: &'a [Symbol],
    temps: Vec<Symbol>,
}

impl JitCtx<'_> {
    fn counter_var(&self, d: usize) -> String {
        format!("__c{d}")
    }

    fn slot(&self, s: &Symbol) -> Result<usize, String> {
        self.spec
            .arrays
            .iter()
            .position(|a| a == s)
            .ok_or_else(|| format!("array `{s}` has no slot in the plan"))
    }
}

/// Render the linear index of an access at constant offsets from the
/// counters: `(__c0 + (o0))*s0 + … + (__c{r-1} + (o{r-1}))`.
fn jit_linear_index(ctx: &JitCtx, offsets: &[i64]) -> String {
    let terms: Vec<String> = offsets
        .iter()
        .enumerate()
        .map(|(d, o)| {
            let c = ctx.counter_var(d);
            let s = ctx.spec.strides[d];
            if s == 1 {
                format!("({c} + ({o}))")
            } else {
                format!("({c} + ({o}))*{s}")
            }
        })
        .collect();
    terms.join(" + ")
}

/// Mirror of the bytecode compiler's expression traversal, rendering Rust
/// that evaluates in the same order with the same primitive semantics.
fn jit_expr(e: &Expr, ctx: &JitCtx) -> Result<String, String> {
    Ok(match e.node() {
        Node::Num(n) => exact_f64(n.to_f64()),
        Node::Sym(s) => {
            if ctx.temps.contains(s) {
                s.name().to_string()
            } else if let Some(d) = ctx.counters.iter().position(|c| c == s) {
                format!("({} as f64)", ctx.counter_var(d))
            } else {
                return Err(format!("unbound parameter `{s}` (substitute first)"));
            }
        }
        Node::Access(a) => {
            let slot = ctx.slot(&a.array)?;
            let mut offsets = Vec::with_capacity(a.indices.len());
            for (d, ix) in a.indices.iter().enumerate() {
                let c = ctx
                    .counters
                    .get(d)
                    .ok_or_else(|| format!("access `{a}` outranks the nest"))?;
                offsets.push(
                    ix.is_offset_of(c)
                        .ok_or_else(|| format!("non-stencil access `{a}`"))?,
                );
            }
            let lin = jit_linear_index(ctx, &offsets);
            if ctx.spec.padded {
                // LoadPadded semantics: every dimension bounds-checked,
                // 0.0 outside the physical extents.
                let checks: Vec<String> = offsets
                    .iter()
                    .enumerate()
                    .map(|(d, o)| {
                        let c = ctx.counter_var(d);
                        let dim = ctx.spec.dims[d];
                        format!("({c} + ({o})) >= 0 && ({c} + ({o})) < {dim}")
                    })
                    .collect();
                format!(
                    "(if {} {{ *__a{slot}.offset(({lin}) as isize) }} else {{ 0.0f64 }})",
                    checks.join(" && ")
                )
            } else {
                // Parenthesised so postfix method calls bind to the
                // loaded value, not the raw pointer.
                format!("(*__a{slot}.offset(({lin}) as isize))")
            }
        }
        Node::Add(ts) => {
            let parts: Result<Vec<String>, String> = ts.iter().map(|t| jit_expr(t, ctx)).collect();
            format!("({})", parts?.join(" + "))
        }
        Node::Mul(fs) => {
            // `-1 * rest` is a negation, exactly as the VM compiles it.
            let negate = matches!(fs[0].as_num(), Some(n) if n.to_f64() == -1.0);
            let rest = if negate { &fs[1..] } else { &fs[..] };
            let parts: Result<Vec<String>, String> =
                rest.iter().map(|t| jit_expr(t, ctx)).collect();
            let prod = format!("({})", parts?.join("*"));
            if negate {
                format!("(-{prod})")
            } else {
                prod
            }
        }
        Node::Pow(b, x) => match x.as_int() {
            Some(k) if i32::try_from(k).is_ok() => format!("{}.powi({k}i32)", jit_expr(b, ctx)?),
            _ => format!("{}.powf({})", jit_expr(b, ctx)?, jit_expr(x, ctx)?),
        },
        Node::Call(f, args) => {
            let a0 = jit_expr(&args[0], ctx)?;
            match f {
                Func::Sin => format!("{a0}.sin()"),
                Func::Cos => format!("{a0}.cos()"),
                Func::Tan => format!("{a0}.tan()"),
                Func::Exp => format!("{a0}.exp()"),
                Func::Ln => format!("{a0}.ln()"),
                Func::Sqrt => format!("{a0}.sqrt()"),
                Func::Abs => format!("{a0}.abs()"),
                Func::Tanh => format!("{a0}.tanh()"),
                // __max/__min/__sign are module helpers replicating the
                // VM's comparisons (f64::max differs on signed zeros).
                Func::Sign => format!("__sign({a0})"),
                Func::Max => format!("__max({a0}, {})", jit_expr(&args[1], ctx)?),
                Func::Min => format!("__min({a0}, {})", jit_expr(&args[1], ctx)?),
            }
        }
        Node::Select(c, a, b) => format!(
            "(if {} {} {} {{ {} }} else {{ {} }})",
            jit_expr(&c.lhs, ctx)?,
            c.rel.symbol(),
            jit_expr(&c.rhs, ctx)?,
            jit_expr(a, ctx)?,
            jit_expr(b, ctx)?
        ),
        Node::UFun(app) | Node::UDeriv(app, _) => {
            return Err(format!("uninterpreted function `{}`", app.name))
        }
    })
}

fn jit_resolve(ix: &Idx, sizes: &BTreeMap<Symbol, i64>) -> Result<i64, String> {
    ix.eval(sizes)
        .ok_or_else(|| format!("unresolved bound `{ix}`"))
}

/// Generate one nest's entry point: per-statement loop nests with the
/// statement's guard intersected into constant bounds ("guard hoisting")
/// and the runtime tile box clamped on top, so any sub-box of the
/// iteration space is valid. Statement-major order is bitwise-equivalent
/// to the interpreter's point-major order because plans forbid write/read
/// aliasing and each location sees its statements in source order.
fn jit_nest_fn(name: &str, nest: &LoopNest, spec: &JitGroupSpec) -> Result<String, String> {
    let rank = nest.rank();
    if rank != spec.dims.len() {
        return Err(format!(
            "nest rank {rank} vs layout rank {}",
            spec.dims.len()
        ));
    }
    let mut sub: BTreeMap<Symbol, Expr> = BTreeMap::new();
    for (s, v) in spec.params {
        sub.insert(s.clone(), Expr::float(*v));
    }
    for (s, v) in spec.sizes {
        sub.insert(s.clone(), Expr::int(*v));
    }

    let mut out = String::new();
    let _ = writeln!(out, "#[no_mangle]");
    let _ = writeln!(
        out,
        "pub unsafe extern \"C\" fn {name}(__lo: *const i64, __hi: *const i64, \
         __arrs: *const *mut f64) {{"
    );
    for slot in 0..spec.arrays.len() {
        let _ = writeln!(out, "    let __a{slot} = *__arrs.add({slot});");
    }
    for (si, s) in nest.body.iter().enumerate() {
        // Constant effective bounds: nest bounds ∩ guard box.
        let mut lo = Vec::with_capacity(rank);
        let mut hi = Vec::with_capacity(rank);
        for b in &nest.bounds {
            lo.push(jit_resolve(&b.lo, spec.sizes)?);
            hi.push(jit_resolve(&b.hi, spec.sizes)?);
        }
        if let Some(g) = &s.guard {
            for (c, b) in &g.ranges {
                let d = nest
                    .counters
                    .iter()
                    .position(|x| x == c)
                    .ok_or_else(|| format!("guard counter `{c}` not in nest"))?;
                lo[d] = lo[d].max(jit_resolve(&b.lo, spec.sizes)?);
                hi[d] = hi[d].min(jit_resolve(&b.hi, spec.sizes)?);
            }
        }
        // Write target: constant offsets from the counters.
        let mut woffs = Vec::with_capacity(rank);
        for (d, ix) in s.lhs.indices.iter().enumerate() {
            woffs.push(
                ix.is_offset_of(&nest.counters[d])
                    .ok_or_else(|| format!("non-constant write index `{ix}`"))?,
            );
        }
        let rhs = subst::subst_sym(&s.rhs, &sub);
        let (bindings, rewritten) = if spec.cse {
            perforad_symbolic::cse::eliminate_one(&rhs, "__cse")
        } else {
            (Vec::new(), rhs)
        };
        let ctx = JitCtx {
            spec,
            counters: &nest.counters,
            temps: bindings.iter().map(|(t, _)| t.clone()).collect(),
        };

        let _ = writeln!(out, "    {{ // statement {si}");
        for d in 0..rank {
            let _ = writeln!(
                out,
                "        let __l{d} = (*__lo.add({d})).max({}i64); \
                 let __h{d} = (*__hi.add({d})).min({}i64);",
                lo[d], hi[d]
            );
        }
        let mut pad = "        ".to_string();
        for d in 0..rank {
            let _ = writeln!(out, "{pad}for __c{d} in __l{d}..=__h{d} {{");
            pad.push_str("    ");
        }
        // CSE temporaries evaluate in binding order, exactly as the VM's
        // StoreTmp sequence does.
        for (t, bexpr) in &bindings {
            let _ = writeln!(
                out,
                "{pad}let {}: f64 = {};",
                t.name(),
                jit_expr(bexpr, &ctx)?
            );
        }
        let wslot = ctx.slot(&s.lhs.array)?;
        let widx = jit_linear_index(&ctx, &woffs);
        let op = match s.op {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
        };
        let _ = writeln!(
            out,
            "{pad}*__a{wslot}.offset(({widx}) as isize) {op} {};",
            jit_expr(&rewritten, &ctx)?
        );
        for d in (0..rank).rev() {
            pad.truncate(pad.len() - 4);
            let _ = writeln!(out, "{pad}}}");
            let _ = d;
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Generate a self-contained crate-root source module for one fused
/// group: the bitwise-exact helper prelude plus one `extern "C"` entry
/// point per nest (`{prefix}_n{k}`), each taking an inclusive per-rank
/// iteration box and the plan's array base pointers in slot order.
/// Compile with `rustc --crate-type cdylib` and load via `dlopen`
/// (`perforad-jit` drives both).
pub fn jit_group_module(spec: &JitGroupSpec) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by perforad-codegen (JIT back-end) — do not edit by hand."
    );
    let _ = writeln!(
        out,
        "#![allow(unused_variables, unused_parens, unused_mut, clippy::all)]\n"
    );
    // The VM's exact comparison semantics (f64::max/min differ on signed
    // zeros and NaNs; Sign has bespoke zero handling).
    let _ = writeln!(
        out,
        "#[inline(always)]\nfn __max(a: f64, b: f64) -> f64 {{ if a >= b {{ a }} else {{ b }} }}"
    );
    let _ = writeln!(
        out,
        "#[inline(always)]\nfn __min(a: f64, b: f64) -> f64 {{ if a <= b {{ a }} else {{ b }} }}"
    );
    let _ = writeln!(
        out,
        "#[inline(always)]\nfn __sign(a: f64) -> f64 {{ \
         if a > 0.0 {{ 1.0 }} else if a < 0.0 {{ -1.0 }} else {{ 0.0 }} }}\n"
    );
    for (k, nest) in spec.nests.iter().enumerate() {
        out.push_str(&jit_nest_fn(&format!("{}_n{k}", spec.prefix), nest, spec)?);
        let _ = writeln!(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::make_loop_nest;
    use perforad_symbolic::{ix, Array};

    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
        make_loop_nest(
            &r.at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap()
    }

    #[test]
    fn expression_rendering() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let e = u.at(ix![&i]).powi(2);
        assert_eq!(r_expr(&e), "u[(i) as usize].powi(2)");
        let e = u.at(ix![&i]).max(Expr::zero());
        assert_eq!(r_expr(&e), "u[(i) as usize].max(0f64)");
    }

    #[test]
    fn nest_function_compiles_shape() {
        let code = r_nest_fn("stencil1d", &paper_1d());
        assert!(code.contains("pub fn stencil1d(lo0: i64, hi0: i64, n: i64, r: &mut [f64], c: &[f64], u: &[f64], dims: &[usize; 1]) {"), "{code}");
        assert!(
            code.contains("for i in (1).max(lo0)..=((n - 1).min(hi0)) {"),
            "{code}"
        );
        assert!(code.contains("r[(i) as usize] ="), "{code}");
    }

    #[test]
    fn module_has_driver() {
        let code = print_module("stencil1d", &[paper_1d()]);
        assert!(code.contains("pub fn stencil1d_nest0("), "{code}");
        assert!(
            code.contains("pub fn stencil1d(") && code.contains("stencil1d_nest0("),
            "{code}"
        );
    }

    #[test]
    fn three_d_access_uses_strides() {
        let (i, j, k) = (Symbol::new("i"), Symbol::new("j"), Symbol::new("k"));
        let u = Array::new("u");
        let e = u.at(ix![&i - 1, &j, &k + 1]);
        assert_eq!(r_expr(&e), "u[((i - 1)*s0 + (j)*s1 + (k + 1)) as usize]");
    }

    fn jit_spec_1d<'a>(
        arrays: &'a [Symbol],
        sizes: &'a std::collections::BTreeMap<Symbol, i64>,
        params: &'a std::collections::BTreeMap<Symbol, f64>,
        nests: &'a [LoopNest],
        dims: &'a [usize],
        strides: &'a [usize],
        padded: bool,
    ) -> JitGroupSpec<'a> {
        JitGroupSpec {
            prefix: "pf",
            nests,
            arrays,
            dims,
            strides,
            padded,
            cse: false,
            sizes,
            params,
        }
    }

    #[test]
    fn jit_module_emits_extern_c_entry_points_with_baked_constants() {
        let nests = [paper_1d()];
        let arrays = [Symbol::new("c"), Symbol::new("r"), Symbol::new("u")];
        let mut sizes = std::collections::BTreeMap::new();
        sizes.insert(Symbol::new("n"), 32i64);
        let params = std::collections::BTreeMap::new();
        let dims = [33usize];
        let strides = [1usize];
        let spec = jit_spec_1d(&arrays, &sizes, &params, &nests, &dims, &strides, false);
        let code = jit_group_module(&spec).unwrap();
        assert!(code.contains("pub unsafe extern \"C\" fn pf_n0("), "{code}");
        // Bounds baked in from sizes (1 ..= n-1 at n=32) and tile-clamped.
        assert!(code.contains("(*__lo.add(0)).max(1i64)"), "{code}");
        assert!(code.contains("(*__hi.add(0)).min(31i64)"), "{code}");
        // Constants are bit-exact.
        assert!(
            code.contains(&exact_f64(2.0)) && code.contains(&exact_f64(-3.0)),
            "{code}"
        );
        // Loads go through raw slot pointers, not slices.
        assert!(code.contains("*__a2.offset("), "{code}");
    }

    #[test]
    fn jit_padded_loads_are_bounds_checked_and_guards_hoisted() {
        use perforad_core::{Bound, Guard, Statement};
        let i = Symbol::new("i");
        let u = Array::new("u");
        let stmt = Statement::add_assign(
            perforad_symbolic::Access::new("r", ix![&i]),
            u.at(ix![&i - 1]),
        )
        .with_guard(Guard {
            ranges: vec![(i.clone(), Bound::new(3, 9))],
        });
        let nest = LoopNest::new(vec![i.clone()], vec![Bound::new(0, 20)], vec![stmt]);
        let nests = [nest];
        let arrays = [Symbol::new("r"), Symbol::new("u")];
        let sizes = std::collections::BTreeMap::new();
        let params = std::collections::BTreeMap::new();
        let dims = [21usize];
        let strides = [1usize];
        let spec = jit_spec_1d(&arrays, &sizes, &params, &nests, &dims, &strides, true);
        let code = jit_group_module(&spec).unwrap();
        // Guard intersected into the constant bounds (3..=9, not 0..=20).
        assert!(code.contains(".max(3i64)"), "{code}");
        assert!(code.contains(".min(9i64)"), "{code}");
        // Padded load checks the extents and falls back to 0.0.
        assert!(code.contains("else { 0.0f64 }"), "{code}");
        assert!(code.contains("< 21"), "{code}");
        assert!(code.contains("+=") && !code.contains("] = "), "{code}");
    }

    #[test]
    fn jit_rejects_unbound_parameters() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let nest = make_loop_nest(
            &Array::new("r").at(ix![&i]),
            Expr::sym(Symbol::new("D")) * u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(0), Idx::constant(7))],
        )
        .unwrap();
        let nests = [nest];
        let arrays = [Symbol::new("r"), Symbol::new("u")];
        let sizes = std::collections::BTreeMap::new();
        let params = std::collections::BTreeMap::new(); // D missing
        let dims = [8usize];
        let strides = [1usize];
        let spec = jit_spec_1d(&arrays, &sizes, &params, &nests, &dims, &strides, false);
        let err = jit_group_module(&spec).unwrap_err();
        assert!(err.contains("unbound parameter"), "{err}");
    }

    #[test]
    fn exact_f64_round_trips_awkward_values() {
        for v in [0.1, -0.0, 1.0 / 3.0, 2.0f64.powi(-60), 6.02e23] {
            let s = exact_f64(v);
            let bits: u64 = s
                .strip_prefix("f64::from_bits(0x")
                .and_then(|r| r.split("u64").next())
                .map(|h| u64::from_str_radix(h, 16).unwrap())
                .unwrap();
            assert_eq!(f64::from_bits(bits).to_bits(), v.to_bits(), "{s}");
        }
    }
}
