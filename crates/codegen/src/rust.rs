//! Rust back-end: generates compilable, chunk-parallelisable kernels.
//!
//! This is the "new back-ends are easy to add" design point of PerforAD
//! (§3.1), and it powers the static-kernel path of the benchmarks: the
//! generated functions are checked into `perforad-pde`, golden-tested
//! against this generator, and compiled by rustc at full optimisation —
//! playing the role of the Intel C compiler in the paper's setup.
//!
//! Each nest becomes `fn {name}_nest{k}(lo0, hi0, sizes…, params…, outs…,
//! ins…, dims)`, taking the outermost counter range as arguments so a
//! harness can chunk it across threads; `{name}` runs every nest serially.

use perforad_core::{AssignOp, LoopNest};
use perforad_symbolic::{Expr, Func, Idx, Node, Number, Symbol};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render an index expression as Rust (i64 arithmetic over counters/sizes).
fn r_idx(ix: &Idx) -> String {
    format!("{ix}")
}

fn r_number(n: &Number) -> String {
    match n {
        Number::Int(i) => format!("{i}f64"),
        Number::Rat(r) => format!("({}f64/{}f64)", r.numer(), r.denom()),
        Number::Float(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}f64")
            }
        }
    }
}

/// Render a linear index for an access: `((i - 1)*s0 + (j)*s1 + (k)) as usize`.
fn r_access_index(indices: &[Idx]) -> String {
    if indices.len() == 1 {
        return format!("({}) as usize", r_idx(&indices[0]));
    }
    let mut parts = Vec::with_capacity(indices.len());
    let last = indices.len() - 1;
    for (d, ix) in indices.iter().enumerate() {
        if d == last {
            parts.push(format!("({})", r_idx(ix)));
        } else {
            parts.push(format!("({})*s{d}", r_idx(ix)));
        }
    }
    format!("({}) as usize", parts.join(" + "))
}

/// Render an expression as Rust source (all scalars `f64`).
pub fn r_expr(e: &Expr) -> String {
    match e.node() {
        Node::Num(n) => r_number(n),
        Node::Sym(s) => format!("({} as f64)", s.name()),
        Node::Access(a) => format!("{}[{}]", a.array.name(), r_access_index(&a.indices)),
        Node::Add(ts) => {
            let parts: Vec<String> = ts.iter().map(r_expr).collect();
            format!("({})", parts.join(" + "))
        }
        Node::Mul(fs) => {
            let parts: Vec<String> = fs.iter().map(r_expr).collect();
            format!("({})", parts.join("*"))
        }
        Node::Pow(b, x) => match x.as_int() {
            Some(k) if i32::try_from(k).is_ok() => format!("{}.powi({k})", r_expr(b)),
            _ => format!("{}.powf({})", r_expr(b), r_expr(x)),
        },
        Node::Call(f, args) => {
            let a0 = r_expr(&args[0]);
            match f {
                Func::Sin => format!("{a0}.sin()"),
                Func::Cos => format!("{a0}.cos()"),
                Func::Tan => format!("{a0}.tan()"),
                Func::Exp => format!("{a0}.exp()"),
                Func::Ln => format!("{a0}.ln()"),
                Func::Sqrt => format!("{a0}.sqrt()"),
                Func::Abs => format!("{a0}.abs()"),
                Func::Sign => format!(
                    "(if {a0} > 0.0 {{ 1.0 }} else if {a0} < 0.0 {{ -1.0 }} else {{ 0.0 }})"
                ),
                Func::Tanh => format!("{a0}.tanh()"),
                Func::Max => format!("{a0}.max({})", r_expr(&args[1])),
                Func::Min => format!("{a0}.min({})", r_expr(&args[1])),
            }
        }
        Node::Select(c, a, b) => format!(
            "(if {} {} {} {{ {} }} else {{ {} }})",
            r_expr(&c.lhs),
            c.rel.symbol(),
            r_expr(&c.rhs),
            r_expr(a),
            r_expr(b)
        ),
        Node::UFun(app) => {
            let args: Vec<String> = app.args.iter().map(r_expr).collect();
            format!("{}({})", app.name, args.join(", "))
        }
        Node::UDeriv(app, wrt) => {
            let args: Vec<String> = app.args.iter().map(r_expr).collect();
            format!("{}_d{}({})", app.name, app.params[*wrt], args.join(", "))
        }
    }
}

struct Signature {
    outputs: Vec<Symbol>,
    inputs: Vec<Symbol>,
    params: Vec<Symbol>,
    sizes: Vec<Symbol>,
    rank: usize,
}

fn signature(nests: &[LoopNest]) -> Signature {
    let mut outputs = BTreeSet::new();
    let mut inputs = BTreeSet::new();
    let mut params = BTreeSet::new();
    let mut sizes = BTreeSet::new();
    let mut rank = 0usize;
    for nest in nests {
        rank = rank.max(nest.rank());
        outputs.extend(nest.outputs());
        inputs.extend(nest.inputs());
        params.extend(nest.parameters());
        sizes.extend(nest.bound_symbols());
    }
    for o in &outputs {
        inputs.remove(o);
    }
    Signature {
        outputs: outputs.into_iter().collect(),
        inputs: inputs.into_iter().collect(),
        params: params.into_iter().collect(),
        sizes: sizes.into_iter().collect(),
        rank,
    }
}

fn args_decl(sig: &Signature) -> String {
    let mut args: Vec<String> = vec!["lo0: i64".into(), "hi0: i64".into()];
    for s in &sig.sizes {
        args.push(format!("{}: i64", s.name()));
    }
    for p in &sig.params {
        args.push(format!("{}: f64", p.name()));
    }
    for o in &sig.outputs {
        args.push(format!("{}: &mut [f64]", o.name()));
    }
    for i in &sig.inputs {
        args.push(format!("{}: &[f64]", i.name()));
    }
    args.push(format!("dims: &[usize; {}]", sig.rank));
    args.join(", ")
}

fn args_call(sig: &Signature, lo: &str, hi: &str) -> String {
    let mut args: Vec<String> = vec![lo.to_string(), hi.to_string()];
    for s in &sig.sizes {
        args.push(s.name().to_string());
    }
    for p in &sig.params {
        args.push(p.name().to_string());
    }
    for o in &sig.outputs {
        args.push(o.name().to_string());
    }
    for i in &sig.inputs {
        args.push(i.name().to_string());
    }
    args.push("dims".into());
    args.join(", ")
}

/// Generate one nest function. The outermost loop runs `lo0..=hi0` clamped
/// to the nest bounds, so callers can chunk it across threads.
pub fn r_nest_fn(name: &str, nest: &LoopNest) -> String {
    let sig = signature(std::slice::from_ref(nest));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#[allow(non_snake_case, unused_variables, unused_parens, clippy::all)]"
    );
    let _ = writeln!(out, "pub fn {name}({}) {{", args_decl(&sig));
    // Strides.
    for d in 0..sig.rank.saturating_sub(1) {
        let terms: Vec<String> = (d + 1..sig.rank).map(|k| format!("dims[{k}]")).collect();
        let _ = writeln!(out, "    let s{d} = ({}) as i64;", terms.join("*"));
    }
    // Loops.
    let mut depth = 1usize;
    for (d, (c, b)) in nest.counters.iter().zip(&nest.bounds).enumerate() {
        let (lo, hi) = if d == 0 {
            (
                format!("({}).max(lo0)", r_idx(&b.lo)),
                format!("({}).min(hi0)", r_idx(&b.hi)),
            )
        } else {
            (r_idx(&b.lo), r_idx(&b.hi))
        };
        let _ = writeln!(out, "{}for {c} in {lo}..=({hi}) {{", "    ".repeat(depth));
        depth += 1;
    }
    let pad = "    ".repeat(depth);
    for s in &nest.body {
        let mut close_guard = false;
        if let Some(g) = &s.guard {
            let conds: Vec<String> = g
                .ranges
                .iter()
                .map(|(c, b)| format!("({}) <= {c} && {c} <= ({})", r_idx(&b.lo), r_idx(&b.hi)))
                .collect();
            let _ = writeln!(out, "{pad}if {} {{", conds.join(" && "));
            close_guard = true;
        }
        let inner_pad = if close_guard {
            format!("{pad}    ")
        } else {
            pad.clone()
        };
        let op = match s.op {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
        };
        let _ = writeln!(
            out,
            "{inner_pad}{}[{}] {op} {};",
            s.lhs.array.name(),
            r_access_index(&s.lhs.indices),
            r_expr(&s.rhs)
        );
        if close_guard {
            let _ = writeln!(out, "{pad}}}");
        }
    }
    for d in (1..depth).rev() {
        let _ = writeln!(out, "{}}}", "    ".repeat(d));
    }
    let _ = writeln!(out, "}}");
    out
}

/// Generate a module with one function per nest plus a serial driver.
pub fn print_module(name: &str, nests: &[LoopNest]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by perforad-codegen (Rust back-end) — do not edit by hand."
    );
    let _ = writeln!(
        out,
        "// Regenerate with the `golden_rust` test in perforad-codegen.\n"
    );
    for (k, nest) in nests.iter().enumerate() {
        out.push_str(&r_nest_fn(&format!("{name}_nest{k}"), nest));
        let _ = writeln!(out);
    }
    // Serial driver over all nests with per-nest full outer ranges.
    let sig = signature(nests);
    let _ = writeln!(
        out,
        "#[allow(non_snake_case, unused_variables, unused_parens, clippy::all)]"
    );
    let _ = writeln!(out, "pub fn {name}({}) {{", args_decl(&sig));
    for (k, nest) in nests.iter().enumerate() {
        let nsig = signature(std::slice::from_ref(nest));
        let lo = format!("({}).max(lo0)", r_idx(&nest.bounds[0].lo));
        let hi = format!("({}).min(hi0)", r_idx(&nest.bounds[0].hi));
        let _ = writeln!(out, "    {name}_nest{k}({});", args_call(&nsig, &lo, &hi));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::make_loop_nest;
    use perforad_symbolic::{ix, Array};

    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
        make_loop_nest(
            &r.at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap()
    }

    #[test]
    fn expression_rendering() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let e = u.at(ix![&i]).powi(2);
        assert_eq!(r_expr(&e), "u[(i) as usize].powi(2)");
        let e = u.at(ix![&i]).max(Expr::zero());
        assert_eq!(r_expr(&e), "u[(i) as usize].max(0f64)");
    }

    #[test]
    fn nest_function_compiles_shape() {
        let code = r_nest_fn("stencil1d", &paper_1d());
        assert!(code.contains("pub fn stencil1d(lo0: i64, hi0: i64, n: i64, r: &mut [f64], c: &[f64], u: &[f64], dims: &[usize; 1]) {"), "{code}");
        assert!(
            code.contains("for i in (1).max(lo0)..=((n - 1).min(hi0)) {"),
            "{code}"
        );
        assert!(code.contains("r[(i) as usize] ="), "{code}");
    }

    #[test]
    fn module_has_driver() {
        let code = print_module("stencil1d", &[paper_1d()]);
        assert!(code.contains("pub fn stencil1d_nest0("), "{code}");
        assert!(
            code.contains("pub fn stencil1d(") && code.contains("stencil1d_nest0("),
            "{code}"
        );
    }

    #[test]
    fn three_d_access_uses_strides() {
        let (i, j, k) = (Symbol::new("i"), Symbol::new("j"), Symbol::new("k"));
        let u = Array::new("u");
        let e = u.at(ix![&i - 1, &j, &k + 1]);
        assert_eq!(r_expr(&e), "u[((i - 1)*s0 + (j)*s1 + (k + 1)) as usize]");
    }
}
