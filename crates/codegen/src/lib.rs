//! # perforad-codegen
//!
//! Code generation for **PerforAD-rs**: modular front- and back-ends around
//! the loop-nest IR, mirroring the modular design of the original tool
//! (§3.1 of the paper).
//!
//! * [`c`] — C back-end with OpenMP pragmas; regenerates listings in the
//!   style of Fig. 5 (wave equation) and Fig. 7 (Burgers) of the paper,
//!   including ternary operators for piecewise derivatives and optional
//!   `#pragma omp atomic` safeguards on scatter baselines.
//! * [`rust`] — Rust back-end producing compilable kernels, chunkable over
//!   the outermost loop for parallel execution; used to generate the static
//!   kernels in `perforad-pde` (golden-tested against this generator).
//! * [`fortran`] — Fortran 90 back-end (`!$omp parallel do`, `merge` for
//!   piecewise derivatives) — the second back-end §3.1 names as the goal of
//!   the modular design.
//! * [`frontend`] — a small DSL parser (`for i in 1 .. n-1 { r[i] = …; }`),
//!   the "new front-ends" extension point the paper leaves as future work.

pub mod c;
pub mod fortran;
pub mod frontend;
pub mod rust;

pub use c::{c_expr, c_nest, print_function, COptions};
pub use fortran::{f_expr, f_nest, print_subroutine};
pub use frontend::{parse_expr, parse_stencil, ParseError};
pub use rust::{print_module, r_expr, r_nest_fn};
