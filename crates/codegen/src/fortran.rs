//! Fortran 90 back-end.
//!
//! The paper's §3.1 names Fortran back-ends as a design goal of PerforAD's
//! modular architecture ("to print Fortran or C code"); this back-end
//! demonstrates the extension point. Gather nests get
//! `!$omp parallel do`, loops are emitted innermost-first (column-major
//! order convention: the innermost C loop becomes the first Fortran index),
//! and piecewise derivatives print via `merge(…)`.

use perforad_core::{AssignOp, LoopNest};
use perforad_symbolic::{Expr, Func, Idx, Node, Number};
use std::collections::BTreeSet;
use std::fmt::Write;

fn f_number(n: &Number) -> String {
    match n {
        Number::Int(i) => format!("{i}"),
        Number::Rat(r) => format!("({}.0d0/{}.0d0)", r.numer(), r.denom()),
        Number::Float(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}d0")
            } else {
                format!("{x}d0")
            }
        }
    }
}

fn f_idx(ix: &Idx) -> String {
    format!("{ix}")
}

/// Render an expression as Fortran.
pub fn f_expr(e: &Expr) -> String {
    match e.node() {
        Node::Num(n) => f_number(n),
        Node::Sym(s) => s.name().to_string(),
        Node::Access(a) => {
            // Fortran is column-major: reverse the index order so that the
            // fastest-varying (innermost C) index comes first.
            let idx: Vec<String> = a.indices.iter().rev().map(f_idx).collect();
            format!("{}({})", a.array.name(), idx.join(", "))
        }
        Node::Add(ts) => {
            let parts: Vec<String> = ts.iter().map(f_expr).collect();
            format!("({})", parts.join(" + "))
        }
        Node::Mul(fs) => {
            let parts: Vec<String> = fs.iter().map(f_expr).collect();
            format!("({})", parts.join("*"))
        }
        Node::Pow(b, x) => format!("({}**{})", f_expr(b), f_expr(x)),
        Node::Call(f, args) => {
            let name = match f {
                Func::Sin => "sin",
                Func::Cos => "cos",
                Func::Tan => "tan",
                Func::Exp => "exp",
                Func::Ln => "log",
                Func::Sqrt => "sqrt",
                Func::Abs => "abs",
                Func::Sign => {
                    return format!("sign(1.0d0, {})", f_expr(&args[0]));
                }
                Func::Tanh => "tanh",
                Func::Max => "max",
                Func::Min => "min",
            };
            let parts: Vec<String> = args.iter().map(f_expr).collect();
            format!("{name}({})", parts.join(", "))
        }
        Node::Select(c, a, b) => format!(
            "merge({}, {}, {} {} {})",
            f_expr(a),
            f_expr(b),
            f_expr(&c.lhs),
            match c.rel {
                perforad_symbolic::Rel::Le => "<=",
                perforad_symbolic::Rel::Lt => "<",
                perforad_symbolic::Rel::Ge => ">=",
                perforad_symbolic::Rel::Gt => ">",
                perforad_symbolic::Rel::Eq => "==",
                perforad_symbolic::Rel::Ne => "/=",
            },
            f_expr(&c.rhs)
        ),
        Node::UFun(app) => {
            let parts: Vec<String> = app.args.iter().map(f_expr).collect();
            format!("{}({})", app.name, parts.join(", "))
        }
        Node::UDeriv(app, wrt) => {
            let parts: Vec<String> = app.args.iter().map(f_expr).collect();
            format!("{}_d{}({})", app.name, app.params[*wrt], parts.join(", "))
        }
    }
}

/// Emit one loop nest as Fortran (inside a subroutine body).
pub fn f_nest(nest: &LoopNest, openmp: bool, indent: usize) -> String {
    let mut out = String::new();
    let pad = |d: usize| "  ".repeat(d);
    // Column-major: iterate the last C counter innermost -> in Fortran the
    // loop order is reversed so the first stored index varies fastest.
    let loops: Vec<_> = nest.counters.iter().zip(&nest.bounds).collect();
    if openmp && nest.is_gather() {
        let privates: Vec<&str> = nest.counters.iter().map(|c| c.name()).collect();
        let _ = writeln!(
            out,
            "{}!$omp parallel do private({})",
            pad(indent),
            privates.join(",")
        );
    }
    for (d, (c, b)) in loops.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}do {c} = {}, {}",
            pad(indent + d),
            f_idx(&b.lo),
            f_idx(&b.hi)
        );
    }
    let body_pad = pad(indent + loops.len());
    for s in &nest.body {
        if let Some(g) = &s.guard {
            let conds: Vec<String> = g
                .ranges
                .iter()
                .map(|(c, b)| format!("{c} >= {} .and. {c} <= {}", f_idx(&b.lo), f_idx(&b.hi)))
                .collect();
            let _ = writeln!(out, "{body_pad}if ({}) then", conds.join(" .and. "));
        }
        let idx: Vec<String> = s.lhs.indices.iter().rev().map(f_idx).collect();
        let lhs = format!("{}({})", s.lhs.array.name(), idx.join(", "));
        let rhs = f_expr(&s.rhs);
        match s.op {
            AssignOp::Assign => {
                let _ = writeln!(out, "{body_pad}{lhs} = {rhs}");
            }
            AssignOp::AddAssign => {
                let _ = writeln!(out, "{body_pad}{lhs} = {lhs} + {rhs}");
            }
        }
        if s.guard.is_some() {
            let _ = writeln!(out, "{body_pad}end if");
        }
    }
    for d in (0..loops.len()).rev() {
        let _ = writeln!(out, "{}end do", pad(indent + d));
    }
    if openmp && nest.is_gather() {
        let _ = writeln!(out, "{}!$omp end parallel do", pad(indent));
    }
    out
}

/// Emit a complete subroutine around a list of loop nests.
pub fn print_subroutine(name: &str, nests: &[LoopNest]) -> String {
    let mut outputs = BTreeSet::new();
    let mut inputs = BTreeSet::new();
    let mut params = BTreeSet::new();
    let mut sizes = BTreeSet::new();
    let mut counters = BTreeSet::new();
    let mut rank = 0usize;
    for nest in nests {
        rank = rank.max(nest.rank());
        outputs.extend(nest.outputs());
        inputs.extend(nest.inputs());
        params.extend(nest.parameters());
        sizes.extend(nest.bound_symbols());
        counters.extend(nest.counters.iter().map(|c| c.name().to_string()));
    }
    for o in &outputs {
        inputs.remove(o);
    }
    let mut args: Vec<String> = Vec::new();
    for a in outputs.iter().chain(inputs.iter()) {
        args.push(a.name().to_string());
    }
    for p in &params {
        args.push(p.name().to_string());
    }
    for s in &sizes {
        args.push(s.name().to_string());
    }

    let mut out = String::new();
    let _ = writeln!(out, "subroutine {name}({})", args.join(", "));
    let _ = writeln!(out, "  implicit none");
    let dim_spec = format!("({})", vec![":"; rank].join(","));
    for s in &sizes {
        let _ = writeln!(out, "  integer, intent(in) :: {}", s.name());
    }
    for p in &params {
        let _ = writeln!(out, "  real(kind=8), intent(in) :: {}", p.name());
    }
    for o in &outputs {
        let _ = writeln!(
            out,
            "  real(kind=8), intent(inout) :: {}{dim_spec}",
            o.name()
        );
    }
    for i in &inputs {
        let _ = writeln!(out, "  real(kind=8), intent(in) :: {}{dim_spec}", i.name());
    }
    let _ = writeln!(
        out,
        "  integer :: {}",
        counters.into_iter().collect::<Vec<_>>().join(", ")
    );
    for nest in nests {
        let _ = writeln!(out);
        out.push_str(&f_nest(nest, true, 1));
    }
    let _ = writeln!(out, "end subroutine {name}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::{make_loop_nest, ActivityMap, AdjointOptions};
    use perforad_symbolic::{ix, Array, Symbol};

    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
        make_loop_nest(
            &r.at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap()
    }

    #[test]
    fn emits_do_loops_and_omp() {
        let code = f_nest(&paper_1d(), true, 0);
        assert!(code.contains("!$omp parallel do private(i)"), "{code}");
        assert!(code.contains("do i = 1, n - 1"), "{code}");
        assert!(code.contains("end do"), "{code}");
        assert!(code.contains("r(i) = "), "{code}");
    }

    #[test]
    fn subroutine_signature_declares_intents() {
        let code = print_subroutine("stencil1d", &[paper_1d()]);
        assert!(code.contains("subroutine stencil1d(r, c, u, n)"), "{code}");
        assert!(
            code.contains("real(kind=8), intent(inout) :: r(:)"),
            "{code}"
        );
        assert!(code.contains("real(kind=8), intent(in) :: u(:)"), "{code}");
        assert!(code.contains("integer, intent(in) :: n"), "{code}");
        assert!(code.contains("end subroutine stencil1d"), "{code}");
    }

    #[test]
    fn adjoint_emits_increments() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_1d()
            .adjoint(&act, &AdjointOptions::default().merged())
            .unwrap();
        let code = f_nest(adj.core_nest().unwrap(), true, 0);
        assert!(code.contains("u_b(i) = u_b(i) + "), "{code}");
    }

    #[test]
    fn piecewise_uses_merge() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let acc = match u.at(ix![&i]).node() {
            Node::Access(a) => a.clone(),
            _ => unreachable!(),
        };
        let e = u.at(ix![&i]).max(Expr::zero());
        let d = perforad_symbolic::diff(&e, &perforad_symbolic::DiffVar::Access(acc)).unwrap();
        assert_eq!(f_expr(&d), "merge(1, 0, u(i) >= 0)");
    }

    #[test]
    fn multidim_indices_are_column_major() {
        let (i, j) = (Symbol::new("i"), Symbol::new("j"));
        let u = Array::new("u");
        // C order u[i-1][j] becomes Fortran u(j, i - 1).
        assert_eq!(f_expr(&u.at(ix![&i - 1, &j])), "u(j, i - 1)");
    }
}
