//! A small textual front-end for stencil loop nests.
//!
//! PerforAD has no parser ("the caller supplies a high-level description…
//! automating this remains future work", §3.1) but is explicitly designed
//! for pluggable front-ends. This module provides one: a compact DSL that
//! parses straight into the loop-nest IR.
//!
//! ```text
//! for i in 1 .. n-1 {
//!     r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]);
//! }
//! ```

use perforad_core::{Bound, CoreError, LoopNest, Statement};
use perforad_symbolic::{Access, Expr, Func, Idx, Node, Symbol};
use std::fmt;

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Assign,
    AddAssign,
    DotDot,
    KwFor,
    KwIn,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        toks: Vec::new(),
    };
    while lx.pos < lx.src.len() {
        let c = lx.src[lx.pos] as char;
        let start = lx.pos;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                lx.pos += 1;
            }
            '#' => {
                // comment to end of line
                while lx.pos < lx.src.len() && lx.src[lx.pos] != b'\n' {
                    lx.pos += 1;
                }
            }
            '+' => {
                if lx.src.get(lx.pos + 1) == Some(&b'=') {
                    lx.toks.push((start, Tok::AddAssign));
                    lx.pos += 2;
                } else {
                    lx.toks.push((start, Tok::Plus));
                    lx.pos += 1;
                }
            }
            '-' => {
                lx.toks.push((start, Tok::Minus));
                lx.pos += 1;
            }
            '*' => {
                lx.toks.push((start, Tok::Star));
                lx.pos += 1;
            }
            '/' => {
                lx.toks.push((start, Tok::Slash));
                lx.pos += 1;
            }
            '^' => {
                lx.toks.push((start, Tok::Caret));
                lx.pos += 1;
            }
            '(' => {
                lx.toks.push((start, Tok::LParen));
                lx.pos += 1;
            }
            ')' => {
                lx.toks.push((start, Tok::RParen));
                lx.pos += 1;
            }
            '[' => {
                lx.toks.push((start, Tok::LBracket));
                lx.pos += 1;
            }
            ']' => {
                lx.toks.push((start, Tok::RBracket));
                lx.pos += 1;
            }
            '{' => {
                lx.toks.push((start, Tok::LBrace));
                lx.pos += 1;
            }
            '}' => {
                lx.toks.push((start, Tok::RBrace));
                lx.pos += 1;
            }
            ',' => {
                lx.toks.push((start, Tok::Comma));
                lx.pos += 1;
            }
            ';' => {
                lx.toks.push((start, Tok::Semi));
                lx.pos += 1;
            }
            '=' => {
                lx.toks.push((start, Tok::Assign));
                lx.pos += 1;
            }
            '.' => {
                if lx.src.get(lx.pos + 1) == Some(&b'.') {
                    lx.toks.push((start, Tok::DotDot));
                    lx.pos += 2;
                } else {
                    return Err(ParseError {
                        pos: start,
                        message: "unexpected `.`".into(),
                    });
                }
            }
            '0'..='9' => {
                let mut end = lx.pos;
                let mut is_float = false;
                while end < lx.src.len() {
                    let ch = lx.src[end] as char;
                    if ch.is_ascii_digit() {
                        end += 1;
                    } else if ch == '.' && lx.src.get(end + 1) != Some(&b'.') && !is_float {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&lx.src[lx.pos..end]).unwrap();
                if is_float {
                    lx.toks.push((
                        start,
                        Tok::Float(text.parse().map_err(|_| ParseError {
                            pos: start,
                            message: format!("bad float `{text}`"),
                        })?),
                    ));
                } else {
                    lx.toks.push((
                        start,
                        Tok::Int(text.parse().map_err(|_| ParseError {
                            pos: start,
                            message: format!("bad integer `{text}`"),
                        })?),
                    ));
                }
                lx.pos = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = lx.pos;
                while end < lx.src.len() {
                    let ch = lx.src[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&lx.src[lx.pos..end]).unwrap();
                let tok = match text {
                    "for" => Tok::KwFor,
                    "in" => Tok::KwIn,
                    _ => Tok::Ident(text.to_string()),
                };
                lx.toks.push((start, tok));
                lx.pos = end;
            }
            other => {
                return Err(ParseError {
                    pos: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(lx.toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    k: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.k).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.k).map(|(p, _)| *p).unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.k).map(|(_, t)| t.clone());
        self.k += 1;
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.k += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            pos: self.pos(),
            message,
        }
    }

    // expr := term (("+"|"-") term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.k += 1;
                    acc = acc + self.term()?;
                }
                Some(Tok::Minus) => {
                    self.k += 1;
                    acc = acc - self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    // term := factor (("*"|"/") factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.k += 1;
                    acc = acc * self.factor()?;
                }
                Some(Tok::Slash) => {
                    self.k += 1;
                    acc = acc / self.factor()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    // factor := "-" factor | power
    fn factor(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.k += 1;
            return Ok(-self.factor()?);
        }
        self.power()
    }

    // power := atom ("^" factor)?
    fn power(&mut self) -> Result<Expr, ParseError> {
        let base = self.atom()?;
        if self.peek() == Some(&Tok::Caret) {
            self.k += 1;
            let e = self.factor()?;
            return Ok(base.pow(e));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::int(v)),
            Some(Tok::Float(v)) => Ok(Expr::float(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.k += 1;
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.k += 1;
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    let f = match name.as_str() {
                        "sin" => Func::Sin,
                        "cos" => Func::Cos,
                        "tan" => Func::Tan,
                        "exp" => Func::Exp,
                        "ln" | "log" => Func::Ln,
                        "sqrt" => Func::Sqrt,
                        "abs" => Func::Abs,
                        "sign" => Func::Sign,
                        "tanh" => Func::Tanh,
                        "max" => Func::Max,
                        "min" => Func::Min,
                        other => return Err(self.err(format!("unknown function `{other}`"))),
                    };
                    if args.len() != f.arity() {
                        return Err(self.err(format!(
                            "`{name}` takes {} argument(s), got {}",
                            f.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::call(f, args))
                }
                Some(Tok::LBracket) => {
                    let mut indices = Vec::new();
                    while self.peek() == Some(&Tok::LBracket) {
                        self.k += 1;
                        let e = self.expr()?;
                        self.expect(&Tok::RBracket, "`]`")?;
                        indices.push(self.to_idx(&e)?);
                    }
                    Ok(Expr::access(Access::new(name, indices)))
                }
                _ => Ok(Expr::sym(name)),
            },
            _ => Err(self.err("expected expression".into())),
        }
    }

    /// Convert a parsed expression to an affine index.
    fn to_idx(&self, e: &Expr) -> Result<Idx, ParseError> {
        expr_to_idx(e).ok_or_else(|| self.err(format!("index `{e}` is not affine")))
    }
}

/// Convert an expression to an affine [`Idx`] if possible.
pub fn expr_to_idx(e: &Expr) -> Option<Idx> {
    match e.node() {
        Node::Num(perforad_symbolic::Number::Int(i)) => Some(Idx::constant(*i)),
        Node::Num(_) => None,
        Node::Sym(s) => Some(Idx::sym(s.clone())),
        Node::Add(ts) => {
            let mut acc = Idx::constant(0);
            for t in ts {
                acc = acc + expr_to_idx(t)?;
            }
            Some(acc)
        }
        Node::Mul(fs) => {
            // must be int * sym
            if fs.len() == 2 {
                if let (Some(c), Node::Sym(s)) = (fs[0].as_int(), fs[1].node()) {
                    return Some(Idx::scaled(s.clone(), c));
                }
            }
            None
        }
        _ => None,
    }
}

/// Parse a standalone expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, k: 0 };
    let e = p.expr()?;
    if p.k != p.toks.len() {
        return Err(p.err("trailing input after expression".into()));
    }
    Ok(e)
}

/// Parse a stencil loop nest:
///
/// ```text
/// for i in 1 .. n-1, j in 1 .. n-1 {
///     r[i][j] = u[i-1][j] + u[i+1][j] - 2.0*u[i][j];
/// }
/// ```
pub fn parse_stencil(src: &str) -> Result<LoopNest, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, k: 0 };
    p.expect(&Tok::KwFor, "`for`")?;
    let mut counters: Vec<Symbol> = Vec::new();
    let mut bounds: Vec<Bound> = Vec::new();
    loop {
        let name = match p.next() {
            Some(Tok::Ident(n)) => n,
            _ => return Err(p.err("expected counter name".into())),
        };
        p.expect(&Tok::KwIn, "`in`")?;
        let lo = p.expr()?;
        let lo = p.to_idx(&lo)?;
        p.expect(&Tok::DotDot, "`..`")?;
        let hi = p.expr()?;
        let hi = p.to_idx(&hi)?;
        counters.push(Symbol::new(name));
        bounds.push(Bound { lo, hi });
        if p.peek() == Some(&Tok::Comma) {
            p.k += 1;
            continue;
        }
        break;
    }
    p.expect(&Tok::LBrace, "`{`")?;
    let mut body = Vec::new();
    while p.peek() != Some(&Tok::RBrace) {
        let lhs = p.expr()?;
        let access = match lhs.node() {
            Node::Access(a) => a.clone(),
            _ => return Err(p.err("statement must assign to an array access".into())),
        };
        let increment = match p.next() {
            Some(Tok::Assign) => false,
            Some(Tok::AddAssign) => true,
            _ => return Err(p.err("expected `=` or `+=`".into())),
        };
        let rhs = p.expr()?;
        p.expect(&Tok::Semi, "`;`")?;
        body.push(if increment {
            Statement::add_assign(access, rhs)
        } else {
            Statement::assign(access, rhs)
        });
    }
    p.expect(&Tok::RBrace, "`}`")?;
    if p.k != p.toks.len() {
        return Err(p.err("trailing input after loop nest".into()));
    }
    let nest = LoopNest::new(counters, bounds, body);
    perforad_core::validate(&nest).map_err(|e: CoreError| ParseError {
        pos: 0,
        message: format!("invalid stencil: {e}"),
    })?;
    Ok(nest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let nest = parse_stencil(
            "for i in 1 .. n-1 {
                r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]);
            }",
        )
        .unwrap();
        assert_eq!(nest.rank(), 1);
        assert!(nest.is_gather());
        assert_eq!(format!("{}", nest.bounds[0]), "[1, n - 1]");
        // Round-trips through the builder-constructed equivalent.
        let i = Symbol::new("i");
        let (u, c) = (
            perforad_symbolic::Array::new("u"),
            perforad_symbolic::Array::new("c"),
        );
        use perforad_symbolic::ix;
        let expect = c.at(ix![&i])
            * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1]));
        assert_eq!(nest.body[0].rhs, expect);
    }

    #[test]
    fn parses_multidim_and_functions() {
        let nest = parse_stencil(
            "for i in 1 .. n-2, j in 1 .. m-2 {
                r[i][j] = max(u[i][j], 0) * (u[i+1][j] - u[i][j-1]) / 2.0;
            }",
        )
        .unwrap();
        assert_eq!(nest.rank(), 2);
        assert_eq!(nest.counters[1], Symbol::new("j"));
    }

    #[test]
    fn parses_powers_and_unary_minus() {
        let e = parse_expr("-u[i]^2 + 3").unwrap();
        let i = Symbol::new("i");
        let u = perforad_symbolic::Array::new("u");
        use perforad_symbolic::ix;
        assert_eq!(e, -(u.at(ix![&i]).powi(2)) + 3);
    }

    #[test]
    fn comments_and_whitespace() {
        let nest = parse_stencil(
            "# heat stencil
             for i in 1 .. n-2 {
                r[i] = u[i-1] + u[i+1]; # neighbours
             }",
        )
        .unwrap();
        assert_eq!(nest.body.len(), 1);
    }

    #[test]
    fn rejects_nonaffine_index() {
        let err = parse_stencil("for i in 1 .. n { r[i] = u[i*i]; }").unwrap_err();
        assert!(err.message.contains("not affine"), "{err}");
    }

    #[test]
    fn rejects_invalid_stencil_semantics() {
        // writes and reads r
        let err = parse_stencil("for i in 1 .. n-1 { r[i] = r[i-1]; }").unwrap_err();
        assert!(err.message.contains("invalid stencil"), "{err}");
    }

    #[test]
    fn rejects_unknown_function_and_arity() {
        assert!(parse_expr("frob(u[i])").is_err());
        assert!(parse_expr("max(u[i])").is_err());
    }

    #[test]
    fn scaled_counter_in_index_is_affine() {
        let e = parse_expr("u[2*i + 1]").unwrap();
        match e.node() {
            Node::Access(a) => {
                assert_eq!(a.indices[0].coeff(&Symbol::new("i")), 2);
                assert_eq!(a.indices[0].offset(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn increment_statements() {
        let nest = parse_stencil("for i in 1 .. n-1 { r[i] += u[i]; }").unwrap();
        assert_eq!(nest.body[0].op, perforad_core::AssignOp::AddAssign);
    }
}
