//! C back-end with OpenMP pragmas — PerforAD's `printfunction` equivalent.
//!
//! Generates listings in the style of Fig. 5 and Fig. 7 of the paper:
//! gather nests get `#pragma omp parallel for`, scatter nests can be
//! emitted with `#pragma omp atomic` safeguards (the manually parallelised
//! Tapenade baseline), `max`/`min` become `fmax`/`fmin`, and piecewise
//! derivatives print as ternary operators.

use perforad_core::{AssignOp, LoopNest};
use perforad_symbolic::{Expr, Func, Idx, Node, Number, Rel};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Options for the C printer.
#[derive(Clone, Debug)]
pub struct COptions {
    /// Emit `#pragma omp parallel for` on gather nests.
    pub openmp: bool,
    /// Emit `#pragma omp atomic` before scatter increments (when false,
    /// scatter nests are emitted serial, like raw Tapenade output).
    pub atomics: bool,
    /// Floating-point C type.
    pub scalar_type: &'static str,
}

impl Default for COptions {
    fn default() -> Self {
        COptions {
            openmp: true,
            atomics: false,
            scalar_type: "double",
        }
    }
}

fn c_idx(ix: &Idx) -> String {
    format!("{ix}")
}

fn c_number(n: &Number) -> String {
    match n {
        Number::Int(i) => format!("{i}"),
        Number::Rat(r) => format!("({}.0/{}.0)", r.numer(), r.denom()),
        Number::Float(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
    }
}

#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Add,
    Mul,
    Unary,
    Atom,
}

/// Render an expression as C.
pub fn c_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, Prec::Add);
    s
}

fn write_expr(out: &mut String, e: &Expr, ctx: Prec) {
    match e.node() {
        Node::Num(n) => {
            let txt = c_number(n);
            if n.to_f64() < 0.0 && ctx > Prec::Add {
                let _ = write!(out, "({txt})");
            } else {
                out.push_str(&txt);
            }
        }
        Node::Sym(s) => out.push_str(s.name()),
        Node::Access(a) => {
            out.push_str(a.array.name());
            for ix in &a.indices {
                let _ = write!(out, "[{}]", c_idx(ix));
            }
        }
        Node::Add(ts) => {
            let paren = ctx > Prec::Add;
            if paren {
                out.push('(');
            }
            for (k, t) in ts.iter().enumerate() {
                if k == 0 {
                    write_expr(out, t, Prec::Add);
                    continue;
                }
                if let Some((mag, rest)) = negated_view(t) {
                    out.push_str(" - ");
                    match rest {
                        Some(r) => {
                            if !mag.is_one() {
                                let _ = write!(out, "{}*", c_number(&mag));
                            }
                            write_expr(out, &r, Prec::Mul);
                        }
                        None => out.push_str(&c_number(&mag)),
                    }
                } else {
                    out.push_str(" + ");
                    write_expr(out, t, Prec::Add);
                }
            }
            if paren {
                out.push(')');
            }
        }
        Node::Mul(fs) => {
            let paren = ctx > Prec::Mul;
            if paren {
                out.push('(');
            }
            // Separate numerator and denominator (negative powers).
            let mut num: Vec<Expr> = Vec::new();
            let mut den: Vec<Expr> = Vec::new();
            let mut negate = false;
            for (k, f) in fs.iter().enumerate() {
                if k == 0 {
                    if let Node::Num(n) = f.node() {
                        if n.to_f64() < 0.0 {
                            negate = true;
                            let mag = n.neg();
                            if !mag.is_one() {
                                num.push(Expr::num(mag));
                            }
                            continue;
                        }
                    }
                }
                if let Node::Pow(b, x) = f.node() {
                    if let Some(k) = x.as_int() {
                        if k < 0 {
                            den.push(b.clone().powi(-k));
                            continue;
                        }
                    }
                }
                num.push(f.clone());
            }
            if negate {
                out.push('-');
            }
            if num.is_empty() {
                out.push_str("1.0");
            }
            for (k, f) in num.iter().enumerate() {
                if k > 0 {
                    out.push('*');
                }
                write_expr(out, f, Prec::Unary);
            }
            for d in &den {
                out.push('/');
                write_expr(out, d, Prec::Unary);
            }
            if paren {
                out.push(')');
            }
        }
        Node::Pow(b, x) => match x.as_int() {
            Some(-1) => {
                out.push_str("(1.0/");
                write_expr(out, b, Prec::Atom);
                out.push(')');
            }
            Some(k) if k >= 0 => {
                let _ = write!(out, "pow({}, {k})", c_expr(b));
            }
            Some(k) => {
                let _ = write!(out, "(1.0/pow({}, {}))", c_expr(b), -k);
            }
            None => {
                let _ = write!(out, "pow({}, {})", c_expr(b), c_expr(x));
            }
        },
        Node::Call(f, args) => {
            let name = match f {
                Func::Sin => "sin",
                Func::Cos => "cos",
                Func::Tan => "tan",
                Func::Exp => "exp",
                Func::Ln => "log",
                Func::Sqrt => "sqrt",
                Func::Abs => "fabs",
                Func::Sign => {
                    // no libm sign; emit a nested ternary
                    let x = c_expr(&args[0]);
                    let _ = write!(out, "(({x}) > 0.0 ? 1.0 : (({x}) < 0.0 ? -1.0 : 0.0))");
                    return;
                }
                Func::Tanh => "tanh",
                Func::Max => "fmax",
                Func::Min => "fmin",
            };
            let _ = write!(out, "{name}(");
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, Prec::Add);
            }
            out.push(')');
        }
        Node::Select(c, a, b) => {
            let _ = write!(
                out,
                "(({} {} {}) ? {} : {})",
                c_expr(&c.lhs),
                c_rel(c.rel),
                c_expr(&c.rhs),
                c_expr(a),
                c_expr(b)
            );
        }
        Node::UFun(app) => {
            let _ = write!(out, "{}(", app.name);
            for (k, a) in app.args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, Prec::Add);
            }
            out.push(')');
        }
        Node::UDeriv(app, wrt) => {
            let _ = write!(out, "{}_d{}(", app.name, app.params[*wrt]);
            for (k, a) in app.args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, Prec::Add);
            }
            out.push(')');
        }
    }
}

fn c_rel(r: Rel) -> &'static str {
    r.symbol()
}

fn negated_view(t: &Expr) -> Option<(Number, Option<Expr>)> {
    match t.node() {
        Node::Num(n) if n.to_f64() < 0.0 => Some((n.neg(), None)),
        Node::Mul(fs) => {
            if let Node::Num(n) = fs[0].node() {
                if n.to_f64() < 0.0 {
                    let rest: Vec<Expr> = fs[1..].to_vec();
                    let rest = if rest.len() == 1 {
                        rest.into_iter().next().unwrap()
                    } else {
                        Expr::mul_all(rest)
                    };
                    return Some((n.neg(), Some(rest)));
                }
            }
            None
        }
        _ => None,
    }
}

/// Emit one loop nest as C.
pub fn c_nest(nest: &LoopNest, opts: &COptions, indent: usize) -> String {
    let mut out = String::new();
    let pad = |d: usize| "    ".repeat(d);
    let gather = nest.is_gather();
    if opts.openmp && gather {
        let privates: Vec<&str> = nest.counters.iter().map(|c| c.name()).collect();
        let _ = writeln!(
            out,
            "{}#pragma omp parallel for private({})",
            pad(indent),
            privates.join(",")
        );
    } else if opts.openmp && opts.atomics {
        let privates: Vec<&str> = nest.counters.iter().map(|c| c.name()).collect();
        let _ = writeln!(
            out,
            "{}#pragma omp parallel for private({})",
            pad(indent),
            privates.join(",")
        );
    }
    for (d, (c, b)) in nest.counters.iter().zip(&nest.bounds).enumerate() {
        let _ = writeln!(
            out,
            "{}for ( {c} = {}; {c} <= {}; {c}++ ) {{",
            pad(indent + d),
            c_idx(&b.lo),
            c_idx(&b.hi)
        );
    }
    let body_pad = pad(indent + nest.counters.len());
    for s in &nest.body {
        let mut line = String::new();
        if let Some(g) = &s.guard {
            let conds: Vec<String> = g
                .ranges
                .iter()
                .map(|(c, b)| format!("{} <= {c} && {c} <= {}", c_idx(&b.lo), c_idx(&b.hi)))
                .collect();
            let _ = writeln!(out, "{body_pad}if ({}) {{", conds.join(" && "));
            line.push_str("    ");
        }
        if !gather && s.op == AssignOp::AddAssign && opts.atomics {
            let _ = writeln!(out, "{body_pad}{line}#pragma omp atomic");
        }
        let op = match s.op {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
        };
        let mut lhs = s.lhs.array.name().to_string();
        for ix in &s.lhs.indices {
            let _ = write!(lhs, "[{}]", c_idx(ix));
        }
        let _ = writeln!(out, "{body_pad}{line}{lhs} {op} {};", c_expr(&s.rhs));
        if s.guard.is_some() {
            let _ = writeln!(out, "{body_pad}}}");
        }
    }
    for d in (0..nest.counters.len()).rev() {
        let _ = writeln!(out, "{}}}", pad(indent + d));
    }
    out
}

/// Emit a complete C function around a list of loop nests — PerforAD's
/// `printfunction(name=…, loopnestlist=…)`.
pub fn print_function(name: &str, nests: &[LoopNest], opts: &COptions) -> String {
    let mut outputs = BTreeSet::new();
    let mut inputs = BTreeSet::new();
    let mut params = BTreeSet::new();
    let mut sizes = BTreeSet::new();
    let mut rank = 0usize;
    for nest in nests {
        rank = rank.max(nest.rank());
        outputs.extend(nest.outputs());
        inputs.extend(nest.inputs());
        params.extend(nest.parameters());
        sizes.extend(nest.bound_symbols());
    }
    // Arrays written take precedence over reads in the signature.
    for o in &outputs {
        inputs.remove(o);
    }
    let stars = "*".repeat(rank);
    let mut args: Vec<String> = Vec::new();
    for a in outputs.iter().chain(inputs.iter()) {
        args.push(format!("{} {}{}", opts.scalar_type, stars, a.name()));
    }
    for p in &params {
        args.push(format!("{} {}", opts.scalar_type, p.name()));
    }
    for s in &sizes {
        args.push(format!("int {}", s.name()));
    }

    let mut out = String::new();
    let _ = writeln!(out, "void {name}({}) {{", args.join(", "));
    let counters: BTreeSet<&str> = nests
        .iter()
        .flat_map(|n| n.counters.iter().map(|c| c.name()))
        .collect();
    let _ = writeln!(
        out,
        "    int {};",
        counters.into_iter().collect::<Vec<_>>().join(", ")
    );
    for nest in nests {
        let _ = writeln!(out);
        out.push_str(&c_nest(nest, opts, 1));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::{make_loop_nest, ActivityMap, AdjointOptions};
    use perforad_symbolic::{ix, Array, Symbol};

    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
        make_loop_nest(
            &r.at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap()
    }

    #[test]
    fn expression_rendering() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let e = 2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]);
        assert_eq!(c_expr(&e), "2.0*u[i - 1] - 3.0*u[i]");
        let e = u.at(ix![&i]).max(Expr::zero());
        assert_eq!(c_expr(&e), "fmax(u[i], 0)");
        let e = Expr::one() / u.at(ix![&i]);
        assert_eq!(c_expr(&e), "(1.0/u[i])");
    }

    #[test]
    fn primal_nest_has_omp_pragma() {
        let code = c_nest(&paper_1d(), &COptions::default(), 0);
        assert!(
            code.contains("#pragma omp parallel for private(i)"),
            "{code}"
        );
        assert!(code.contains("for ( i = 1; i <= n - 1; i++ ) {"), "{code}");
        assert!(
            code.contains("r[i] = c[i]*(2.0*u[i - 1] - 3.0*u[i] + 4.0*u[i + 1]);"),
            "{code}"
        );
    }

    #[test]
    fn adjoint_core_loop_matches_paper_shape() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_1d()
            .adjoint(&act, &AdjointOptions::default().merged())
            .unwrap();
        let core = adj.core_nest().unwrap();
        let code = c_nest(core, &COptions::default(), 0);
        // §3.2 final loop: ub[j] += 4 c[j-1] rb[j-1] - 3 c[j] rb[j] + 2 c[j+1] rb[j+1]
        assert!(
            code.contains(
                "u_b[i] += 4.0*c[i - 1]*r_b[i - 1] - 3.0*c[i]*r_b[i] + 2.0*c[i + 1]*r_b[i + 1];"
            ),
            "{code}"
        );
    }

    #[test]
    fn scatter_with_atomics_emits_pragma() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let sc = paper_1d().scatter_adjoint(&act).unwrap();
        let opts = COptions {
            atomics: true,
            ..Default::default()
        };
        let code = c_nest(&sc, &opts, 0);
        assert!(code.contains("#pragma omp atomic"), "{code}");
    }

    #[test]
    fn function_signature_contains_arrays_params_sizes() {
        let code = print_function("stencil1d", &[paper_1d()], &COptions::default());
        assert!(
            code.starts_with("void stencil1d(double *r, double *c, double *u, int n) {"),
            "{code}"
        );
        assert!(code.contains("int i;"), "{code}");
    }

    #[test]
    fn select_prints_ternary_like_figure_7() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let acc = match u.at(ix![&i]).node() {
            Node::Access(a) => a.clone(),
            _ => unreachable!(),
        };
        let e = u.at(ix![&i]).max(Expr::zero());
        let d = perforad_symbolic::diff(&e, &perforad_symbolic::DiffVar::Access(acc)).unwrap();
        assert_eq!(c_expr(&d), "((u[i] >= 0) ? 1 : 0)");
    }
}
