//! # perforad-perfmodel
//!
//! Analytic performance model for **PerforAD-rs** — the substitute for the
//! paper's 12-core Broadwell and 64-core KNL machines (this repository is
//! built and evaluated on a small container host). A roofline
//! (compute/bandwidth) model plus an atomic-contention term predicts
//! kernel runtimes from profiles extracted from the very same loop-nest IR
//! the runtime executes, so "who wins and where the curves bend" in the
//! projected figures is driven by the measured code structure.
//!
//! See DESIGN.md §4 for the substitution rationale and EXPERIMENTS.md for
//! projected-vs-paper numbers.

pub mod machine;
pub mod model;

pub use machine::{broadwell, host, knl, Machine};
pub use model::{
    predict, predict_batch, predict_checkpoint, predict_schedule, profile, speedup_series,
    with_stack, BatchShape, BatchStrategy, CheckpointShape, KernelProfile, ScheduleShape,
};
