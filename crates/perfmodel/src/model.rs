//! Kernel profiles extracted from the IR and the runtime prediction model.

use crate::machine::Machine;
use perforad_core::{AssignOp, LoopNest};
use perforad_symbolic::{visit, Symbol};
use std::collections::{BTreeMap, BTreeSet};

/// Work performed per iteration point, extracted from loop-nest IR.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelProfile {
    /// Total iteration points (all nests).
    pub points: f64,
    /// Floating-point operations per point (expression-node estimate).
    pub flops_per_point: f64,
    /// Unique memory traffic per point, bytes (distinct arrays touched;
    /// streaming reuse assumed for neighbour loads).
    pub bytes_per_point: f64,
    /// Scatter `+=` updates per point (atomic candidates).
    pub atomics_per_point: f64,
    /// Bytes pushed to a sequential intermediate stack per point
    /// (Tapenade stack mode).
    pub stack_bytes_per_point: f64,
}

/// Build a profile from loop nests and integer size bindings.
pub fn profile(nests: &[LoopNest], sizes: &BTreeMap<Symbol, i64>) -> KernelProfile {
    let mut points_total = 0u64;
    let mut flops_weighted = 0.0;
    let mut atomics_weighted = 0.0;
    let mut arrays: BTreeSet<Symbol> = BTreeSet::new();
    let mut writes: BTreeSet<Symbol> = BTreeSet::new();
    for nest in nests {
        let pts = nest.iteration_count(sizes).unwrap_or(0);
        points_total += pts;
        let gather = nest.is_gather();
        for s in &nest.body {
            // node_count approximates scalar ops per statement.
            flops_weighted += (visit::node_count(&s.rhs) as f64) * pts as f64;
            if !gather && s.op == AssignOp::AddAssign {
                atomics_weighted += pts as f64;
            }
            writes.insert(s.lhs.array.clone());
            arrays.extend(visit::arrays(&s.rhs));
        }
    }
    arrays.extend(writes.iter().cloned());
    let points = points_total.max(1) as f64;
    KernelProfile {
        points,
        flops_per_point: flops_weighted / points,
        // 8 B per distinct array read + 16 B per written array
        // (read-for-ownership + writeback).
        bytes_per_point: 8.0 * (arrays.len() as f64) + 8.0 * (writes.len() as f64),
        atomics_per_point: atomics_weighted / points,
        stack_bytes_per_point: 0.0,
    }
}

/// Add Tapenade-style stack traffic (e.g. 2 pushes of 8 B for the Burgers
/// min/max pair).
pub fn with_stack(mut p: KernelProfile, bytes_per_point: f64) -> KernelProfile {
    p.stack_bytes_per_point = bytes_per_point;
    p
}

/// Predicted wall-clock seconds at a thread count.
pub fn predict(m: &Machine, p: &KernelProfile, threads: usize) -> f64 {
    let threads = threads.max(1);
    let t_flops = p.points * p.flops_per_point / (m.flops(threads) * 1e9);
    let t_mem = p.points * p.bytes_per_point / (m.bandwidth(threads) * 1e9);
    let t_atomic = p.points * p.atomics_per_point * m.atomic_cost(threads) * 1e-9;
    // Stack traffic is sequential (the reverse loop order is fixed).
    let t_stack = p.points * p.stack_bytes_per_point * m.stack_byte_ns * 1e-9;
    t_flops.max(t_mem) + t_atomic + t_stack
}

/// Shape of one *scheduled* execution of a kernel: how the iteration
/// space is cut up and driven, orthogonal to the arithmetic captured by
/// [`KernelProfile`]. Built by the `perforad-tune` autotuner from a
/// candidate `Strategy×Lowering×TilePolicy×tile×fusion` configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleShape {
    /// Worker count driving the schedule (1 = serial execution).
    pub threads: usize,
    /// Barrier-separated parallel regions per sweep (the fusion knob:
    /// fused schedules have one region per fusion group, unfused ones pay
    /// one barrier per nest).
    pub barriers: usize,
    /// Total tile count across all regions.
    pub tiles: usize,
    /// True under the vectorized register-IR row executor, false under
    /// the per-point stack interpreter.
    pub rows: bool,
    /// True under JIT-compiled native tiles (overrides `rows` for the
    /// per-point dispatch term).
    pub jit: bool,
    /// Fusion groups whose native code would have to be compiled
    /// out-of-process for this execution (zero once the persistent
    /// artifact cache is warm — the compile cost is paid once per
    /// fingerprint). Only meaningful when `jit`.
    pub jit_cold_groups: usize,
    /// True for dynamic (shared-counter) tile assignment, false for
    /// static LPT pre-assignment.
    pub dynamic: bool,
}

/// Predicted wall-clock seconds for one scheduled sweep: the roofline of
/// [`predict`] plus the scheduling overheads the tuner trades off —
/// per-point lowering dispatch (native JIT code < rows < interpreter),
/// per-tile dispatch, region barriers, the assignment policy's
/// imbalance/contention terms, and the one-off native compile cost for
/// cold JIT fingerprints.
///
/// The model only has to *rank* candidate configurations well enough that
/// the true winner survives the top-K cut before empirical timing; its
/// absolute numbers are roofline-grade, not cycle-accurate.
pub fn predict_schedule(m: &Machine, p: &KernelProfile, s: &ScheduleShape) -> f64 {
    let threads = s.threads.max(1);
    let t_flops = p.points * p.flops_per_point / (m.flops(threads) * 1e9);
    let t_mem = p.points * p.bytes_per_point / (m.bandwidth(threads) * 1e9);
    // Lowering dispatch is CPU work on the executing threads; it cannot
    // hide behind the memory wall in this simple in-order model.
    let point_ns = if s.jit {
        m.jit_point_ns
    } else if s.rows {
        m.rows_point_ns
    } else {
        m.interp_point_ns
    };
    let t_dispatch = p.points * point_ns * 1e-9 / threads as f64;
    let tiles = s.tiles.max(1);
    let mut t_tiles = tiles as f64 * m.tile_dispatch_ns * 1e-9 / threads as f64;
    let mut imbalance = 1.0;
    if threads > 1 {
        if s.dynamic {
            // One shared-counter fetch per tile.
            t_tiles += tiles as f64 * m.atomic_cost(threads) * 1e-9 / threads as f64;
        } else {
            // LPT pre-assignment cannot rebalance at run time; the penalty
            // fades as tiles-per-worker grows.
            imbalance += 0.5 * (threads - 1) as f64 / tiles as f64;
        }
    }
    // Serial execution never forks the pool, so it pays no barriers.
    let t_barrier = if threads > 1 {
        s.barriers as f64 * m.barrier_us * 1e-6
    } else {
        0.0
    };
    let t_atomic = p.points * p.atomics_per_point * m.atomic_cost(threads) * 1e-9;
    let t_stack = p.points * p.stack_bytes_per_point * m.stack_byte_ns * 1e-9;
    // One out-of-process build per cold fused group; zero with a warm
    // artifact cache (the tuner's default assumption, since its own
    // persistent cache pays the cost once per fingerprint).
    let t_compile = if s.jit {
        s.jit_cold_groups as f64 * m.jit_compile_s
    } else {
        0.0
    };
    (t_flops.max(t_mem) + t_dispatch) * imbalance
        + t_tiles
        + t_barrier
        + t_atomic
        + t_stack
        + t_compile
}

/// Shape of one *checkpointed time loop*: how a `steps`-long reverse
/// sweep is replayed under a snapshot budget. Built by `perforad-ckpt`'s
/// `CheckpointPlan::shape` from the plan's simulated action stream —
/// the recompute ratio and store traffic are exact counts, not
/// asymptotics.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointShape {
    /// Time steps in the sweep.
    pub steps: usize,
    /// Maximum simultaneously live snapshots.
    pub budget: usize,
    /// Bytes per snapshot (the full time-loop state).
    pub state_bytes: usize,
    /// Primal steps recomputed per primal step (0.0 = store-all,
    /// `(T−1)/2` = budget 1).
    pub recompute_ratio: f64,
    /// Snapshot save events across the whole sweep.
    pub saves: usize,
    /// Snapshot load events across the whole sweep.
    pub loads: usize,
}

impl CheckpointShape {
    /// Live-snapshot memory high-water mark.
    pub fn mem_bytes(&self) -> usize {
        self.budget.saturating_mul(self.state_bytes)
    }
}

/// Predicted wall-clock seconds for a checkpointed adjoint time loop,
/// given the cost of one primal step and one adjoint step (predicted by
/// [`predict_schedule`] or measured by the tuner's timing stage — the
/// budget axis never changes per-step cost, so the two compose exactly):
///
/// * one streaming forward pass + one reverse sweep — the work store-all
///   would also do;
/// * `recompute_ratio × steps` extra primal steps — the price of the
///   budget;
/// * snapshot traffic: every save/load moves `state_bytes` through the
///   store at [`Machine::snapshot_cost`] ns/byte.
///
/// Budgets whose live set exceeds [`Machine::mem_budget_bytes`] return
/// `f64::INFINITY`: infeasible, never merely slow — this is what turns
/// the tuner's budget axis into a memory-capacity constraint.
pub fn predict_checkpoint(
    m: &Machine,
    primal_step_s: f64,
    adjoint_step_s: f64,
    ck: &CheckpointShape,
) -> f64 {
    if ck.mem_bytes() > m.mem_budget_bytes {
        return f64::INFINITY;
    }
    let steps = ck.steps as f64;
    let t_forward = steps * primal_step_s;
    let t_adjoint = steps * adjoint_step_s;
    let t_recompute = ck.recompute_ratio * steps * primal_step_s;
    let t_traffic = (ck.saves + ck.loads) as f64 * ck.state_bytes as f64 * m.snapshot_cost * 1e-9;
    t_forward + t_adjoint + t_recompute + t_traffic
}

/// How a batch of independent right-hand sides (seismic shots) is
/// dispatched over one compiled+tuned schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Each pool worker owns whole shots and executes them serially:
    /// zero extra barriers, perfect scaling while `shots ≥ threads`
    /// (modulo the `ceil(shots/threads)` tail wave).
    ShotParallel,
    /// Shots run one after another, each through the tiled grid-parallel
    /// schedule: the right shape for few large shots, where one shot's
    /// grid has enough parallelism to feed the whole pool.
    GridParallel,
}

/// Shape of one *batched gradient*: how many independent shots, over how
/// many workers, each sweeping how many time steps. The per-shot costs
/// are supplied by the caller (measured or predicted via
/// [`predict_schedule`]); this shape only fixes the dispatch geometry.
#[derive(Clone, Copy, Debug)]
pub struct BatchShape {
    /// Independent right-hand sides in the batch.
    pub shots: usize,
    /// Pool workers available for dispatch.
    pub threads: usize,
    /// Time steps per shot (forward + reverse sweep).
    pub steps: usize,
}

/// Predicted wall-clock seconds for a batched gradient under a dispatch
/// strategy, given the cost of evaluating one whole shot serially
/// (`serial_shot_s` — the shot-parallel workers' per-job price) and
/// through the grid-parallel schedule (`parallel_shot_s`):
///
/// * [`BatchStrategy::ShotParallel`] runs `ceil(shots/threads)` waves of
///   serial shots plus one pool fork/join for the whole batch;
/// * [`BatchStrategy::GridParallel`] runs the shots back to back, each
///   at its grid-parallel price (whose barrier costs per sweep are
///   already inside `parallel_shot_s`).
///
/// Like [`predict_schedule`], the model only has to *rank* the two
/// strategies; the bitwise-identity invariant makes the choice a pure
/// performance knob, never a correctness one.
pub fn predict_batch(
    m: &Machine,
    serial_shot_s: f64,
    parallel_shot_s: f64,
    b: &BatchShape,
    strategy: BatchStrategy,
) -> f64 {
    let shots = b.shots.max(1) as f64;
    match strategy {
        BatchStrategy::ShotParallel => {
            let waves = (b.shots.max(1)).div_ceil(b.threads.max(1)) as f64;
            waves * serial_shot_s + m.barrier_us * 1e-6
        }
        BatchStrategy::GridParallel => shots * parallel_shot_s,
    }
}

/// `(threads, seconds, speedup-vs-1-thread)` across a sweep.
pub fn speedup_series(m: &Machine, p: &KernelProfile, threads: &[usize]) -> Vec<(usize, f64, f64)> {
    let t1 = predict(m, p, 1);
    threads
        .iter()
        .map(|&t| {
            let tt = predict(m, p, t);
            (t, tt, t1 / tt)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{broadwell, knl};
    use perforad_core::{ActivityMap, AdjointOptions};

    fn wave_nest() -> LoopNest {
        use perforad_symbolic::{ix, Array, Expr, Idx};
        let (i, j, k) = (Symbol::new("i"), Symbol::new("j"), Symbol::new("k"));
        let n = Symbol::new("n");
        let dd = Expr::sym(Symbol::new("D"));
        let c = Array::new("c");
        let u = Array::new("u");
        let u1 = Array::new("u_1");
        let u2 = Array::new("u_2");
        let lap = u1.at(ix![&i - 1, &j, &k])
            + u1.at(ix![&i + 1, &j, &k])
            + u1.at(ix![&i, &j - 1, &k])
            + u1.at(ix![&i, &j + 1, &k])
            + u1.at(ix![&i, &j, &k - 1])
            + u1.at(ix![&i, &j, &k + 1])
            - 6.0 * u1.at(ix![&i, &j, &k]);
        let expr = 2.0 * u1.at(ix![&i, &j, &k]) - u2.at(ix![&i, &j, &k])
            + c.at(ix![&i, &j, &k]) * dd * lap;
        let b = (Idx::constant(1), Idx::sym(n.clone()) - 2);
        perforad_core::make_loop_nest(
            &u.at(ix![&i, &j, &k]),
            expr,
            vec![i.clone(), j.clone(), k.clone()],
            vec![b.clone(), b.clone(), b],
        )
        .unwrap()
    }

    fn sizes(n: i64) -> BTreeMap<Symbol, i64> {
        let mut m = BTreeMap::new();
        m.insert(Symbol::new("n"), n);
        m
    }

    #[test]
    fn paper_scale_serial_times_are_in_range() {
        // 1000³ grid, one step: paper reports 4.14 s primal serial and
        // 91 s for the atomic scatter baseline at 1 thread on Broadwell.
        let m = broadwell();
        let p = profile(std::slice::from_ref(&wave_nest()), &sizes(1000));
        let t = predict(&m, &p, 1);
        assert!(t > 1.0 && t < 10.0, "primal serial {t}");

        let act = ActivityMap::new()
            .with_suffixed("u")
            .with_suffixed("u_1")
            .with_suffixed("u_2");
        let sc = wave_nest().scatter_adjoint(&act).unwrap();
        let ps = profile(std::slice::from_ref(&sc), &sizes(1000));
        let t_atomic = predict(&m, &ps, 1);
        assert!(
            t_atomic / t > 5.0 && t_atomic / t < 40.0,
            "atomic slowdown {t_atomic} vs {t}"
        );
    }

    #[test]
    fn atomics_never_scale() {
        let m = broadwell();
        let act = ActivityMap::new()
            .with_suffixed("u")
            .with_suffixed("u_1")
            .with_suffixed("u_2");
        let sc = wave_nest().scatter_adjoint(&act).unwrap();
        let p = profile(std::slice::from_ref(&sc), &sizes(500));
        let series = speedup_series(&m, &p, &[1, 2, 4, 8, 12]);
        // Paper: the atomics curve is flat or falling.
        for (_, _, s) in &series[1..] {
            assert!(*s < 1.5, "atomics must not scale, got speedup {s}");
        }
    }

    #[test]
    fn gather_adjoint_scales_like_primal() {
        let m = broadwell();
        let nest = wave_nest();
        let act = ActivityMap::new()
            .with_suffixed("u")
            .with_suffixed("u_1")
            .with_suffixed("u_2");
        let adj = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
        let pp = profile(std::slice::from_ref(&nest), &sizes(500));
        let pa = profile(&adj.nests, &sizes(500));
        let sp = speedup_series(&m, &pp, &[1, 12]);
        let sa = speedup_series(&m, &pa, &[1, 12]);
        let (sp12, sa12) = (sp[1].2, sa[1].2);
        assert!(
            (sa12 / sp12) > 0.7,
            "adjoint stencil scalability {sa12} must track primal {sp12}"
        );
        // And the crossover: parallel PerforAD beats 1-thread atomics hugely.
        let sc = nest.scatter_adjoint(&act).unwrap();
        let ps = profile(std::slice::from_ref(&sc), &sizes(500));
        let best_atomic = (1..=12)
            .map(|t| predict(&m, &ps, t))
            .fold(f64::MAX, f64::min);
        let best_gather = predict(&m, &pa, 12);
        assert!(
            best_atomic / best_gather > 2.0,
            "paper reports 3.4×; model gives {}",
            best_atomic / best_gather
        );
    }

    #[test]
    fn knl_ratio_exceeds_broadwell_ratio() {
        // Paper: 3.4× on Broadwell, >19× on KNL for the wave adjoint.
        let nest = wave_nest();
        let act = ActivityMap::new()
            .with_suffixed("u")
            .with_suffixed("u_1")
            .with_suffixed("u_2");
        let adj = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
        let sc = nest.scatter_adjoint(&act).unwrap();
        let pa = profile(&adj.nests, &sizes(500));
        let ps = profile(std::slice::from_ref(&sc), &sizes(500));
        let ratio = |m: &Machine| {
            let best_atomic = (1..=m.threads_max)
                .map(|t| predict(m, &ps, t))
                .fold(f64::MAX, f64::min);
            let best_gather = (1..=m.threads_max)
                .map(|t| predict(m, &pa, t))
                .fold(f64::MAX, f64::min);
            best_atomic / best_gather
        };
        let rb = ratio(&broadwell());
        let rk = ratio(&knl());
        assert!(rk > rb, "KNL ratio {rk} must exceed Broadwell {rb}");
        assert!(rk > 8.0, "KNL ratio should be order-of-magnitude, got {rk}");
    }

    #[test]
    fn schedule_model_ranks_the_recorded_wins() {
        // The tuner's pruning stage only needs the model to rank: rows
        // beat the interpreter, fused beats unfused, and a tiny problem
        // prefers serial over paying parallel-region barriers.
        let m = crate::machine::host(8);
        let act = ActivityMap::new()
            .with_suffixed("u")
            .with_suffixed("u_1")
            .with_suffixed("u_2");
        let adj = wave_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let p = profile(&adj.nests, &sizes(96));
        let base = ScheduleShape {
            threads: 8,
            barriers: 1,
            tiles: 256,
            rows: false,
            jit: false,
            jit_cold_groups: 0,
            dynamic: true,
        };
        let interp = predict_schedule(&m, &p, &base);
        let rows = predict_schedule(&m, &p, &ScheduleShape { rows: true, ..base });
        assert!(
            interp > rows,
            "rows must rank first: interp {interp} vs rows {rows}"
        );
        // Warm-cache JIT outranks rows (native code has no op dispatch)…
        let jit = predict_schedule(&m, &p, &ScheduleShape { jit: true, ..base });
        assert!(jit < rows, "jit must rank above rows: {jit} vs {rows}");
        // …but a cold compile on a small problem buries it.
        let cold = predict_schedule(
            &m,
            &p,
            &ScheduleShape {
                jit: true,
                jit_cold_groups: 1,
                ..base
            },
        );
        assert!(cold > interp, "cold compile must dominate: {cold}");
        assert!((cold - jit - m.jit_compile_s).abs() < 1e-12);
        // Serially (where BENCH_exec recorded 4.8×/11.1×) the margin is wide.
        let serial = ScheduleShape { threads: 1, ..base };
        let interp1 = predict_schedule(&m, &p, &serial);
        let rows1 = predict_schedule(
            &m,
            &p,
            &ScheduleShape {
                rows: true,
                ..serial
            },
        );
        assert!(
            interp1 / rows1 > 2.0,
            "serial rows speedup: {}",
            interp1 / rows1
        );
        // Unfused: one barrier per nest (53), a tile stream per nest.
        let unfused = predict_schedule(
            &m,
            &p,
            &ScheduleShape {
                barriers: 53,
                ..base
            },
        );
        assert!(
            unfused > interp,
            "barriers must cost: {unfused} vs {interp}"
        );

        // Tiny problem: serial avoids the barrier + dispatch overhead.
        let tiny = profile(&adj.nests, &sizes(6));
        let par = predict_schedule(
            &m,
            &tiny,
            &ScheduleShape {
                tiles: 53,
                barriers: 1,
                ..base
            },
        );
        let ser = predict_schedule(
            &m,
            &tiny,
            &ScheduleShape {
                threads: 1,
                tiles: 53,
                barriers: 1,
                ..base
            },
        );
        assert!(ser < par, "serial must win a 6³ problem: {ser} vs {par}");
    }

    #[test]
    fn schedule_model_reduces_to_roofline_plus_overheads() {
        let m = broadwell();
        let p = profile(std::slice::from_ref(&wave_nest()), &sizes(200));
        let s = ScheduleShape {
            threads: 1,
            barriers: 1,
            tiles: 1,
            rows: true,
            jit: false,
            jit_cold_groups: 0,
            dynamic: false,
        };
        let sched = predict_schedule(&m, &p, &s);
        let plain = predict(&m, &p, 1);
        // Same roofline core, plus small per-point/tile overheads.
        assert!(sched >= plain);
        assert!(
            sched < plain * 2.0,
            "overheads dominate: {sched} vs {plain}"
        );
    }

    #[test]
    fn checkpoint_model_trades_recompute_against_memory() {
        let m = crate::machine::host(8);
        // A 1 GiB-per-snapshot state: only small budgets fit in the 2 GiB
        // host budget.
        let big = |budget: usize, ratio: f64| CheckpointShape {
            steps: 1000,
            budget,
            state_bytes: 1 << 30,
            recompute_ratio: ratio,
            saves: 2 * budget,
            loads: 4 * budget,
        };
        let fits = predict_checkpoint(&m, 1e-3, 2e-3, &big(2, 1.5));
        assert!(fits.is_finite());
        let too_big = predict_checkpoint(&m, 1e-3, 2e-3, &big(3, 0.8));
        assert!(
            too_big.is_infinite(),
            "budgets past mem_budget_bytes must be infeasible"
        );
        // With memory to spare, less recompute is strictly cheaper...
        let small = |budget: usize, ratio: f64| CheckpointShape {
            state_bytes: 1 << 20,
            ..big(budget, ratio)
        };
        let tight = predict_checkpoint(&m, 1e-3, 2e-3, &small(4, 2.0));
        let roomy = predict_checkpoint(&m, 1e-3, 2e-3, &small(64, 0.2));
        assert!(roomy < tight, "roomy {roomy} vs tight {tight}");
        // ...and the floor is the un-checkpointed forward + adjoint cost.
        let floor = 1000.0 * (1e-3 + 2e-3);
        assert!(roomy > floor);
        assert!(
            predict_checkpoint(&m, 1e-3, 2e-3, &small(64, 0.0)) - floor
                < 64.0 * 6.0 * (1 << 20) as f64 * m.snapshot_cost * 1e-9 + 1e-12
        );
        assert_eq!(small(4, 0.0).mem_bytes(), 4 << 20);
    }

    #[test]
    fn batch_model_ranks_shot_dispatch() {
        let m = crate::machine::host(2);
        // Per-shot costs where parallelism pays 1.5× per shot: a full
        // batch amortizes the slower serial shots across workers.
        let (serial_shot, parallel_shot) = (1.5e-3, 1.0e-3);
        let shape = |shots: usize| BatchShape {
            shots,
            threads: 2,
            steps: 16,
        };
        let sp = predict_batch(
            &m,
            serial_shot,
            parallel_shot,
            &shape(8),
            BatchStrategy::ShotParallel,
        );
        let gp = predict_batch(
            &m,
            serial_shot,
            parallel_shot,
            &shape(8),
            BatchStrategy::GridParallel,
        );
        // 4 waves × 1.5 ms < 8 shots × 1.0 ms.
        assert!(
            sp < gp,
            "shot-parallel must win 8 shots on 2 threads: {sp} vs {gp}"
        );
        // A single shot cannot fill the pool: round-robin the grid instead.
        let sp1 = predict_batch(
            &m,
            serial_shot,
            parallel_shot,
            &shape(1),
            BatchStrategy::ShotParallel,
        );
        let gp1 = predict_batch(
            &m,
            serial_shot,
            parallel_shot,
            &shape(1),
            BatchStrategy::GridParallel,
        );
        assert!(gp1 < sp1, "grid-parallel must win 1 shot: {gp1} vs {sp1}");
        // The wave count rounds up: 3 shots on 2 threads still pay 2 waves.
        let sp3 = predict_batch(
            &m,
            serial_shot,
            parallel_shot,
            &shape(3),
            BatchStrategy::ShotParallel,
        );
        assert!((sp3 - (2.0 * serial_shot + m.barrier_us * 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_model_saturates() {
        let m = knl();
        assert!(m.bandwidth(64) <= m.bw_peak);
        assert!(m.bandwidth(1) == m.bw_single);
        assert!(m.flops(512) == m.flops(64));
    }
}
