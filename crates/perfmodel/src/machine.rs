//! Machine descriptions and presets.
//!
//! The paper evaluates on a 12-core Broadwell Xeon and a 64-core Knights
//! Landing Xeon Phi; this host has neither. The presets below are
//! calibrated against the paper's *serial* numbers (wave primal ≈ 4.1 s at
//! 1000³, atomics ≈ 91 s single-threaded, KNL serial ≈ 3× slower than
//! Broadwell) so that the projected thread-scaling curves reproduce the
//! figures' shapes. See DESIGN.md §4 for the substitution rationale.

/// A simple analytic machine: roofline (compute vs bandwidth) plus an
/// atomic-contention term.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    pub name: &'static str,
    /// Physical cores (ideal-scaling limit for compute).
    pub cores: usize,
    /// Maximum hardware threads the paper sweeps to.
    pub threads_max: usize,
    /// Effective scalar+SIMD throughput per core, Gflop/s.
    pub flops_per_core: f64,
    /// Single-thread sustainable memory bandwidth, GB/s.
    pub bw_single: f64,
    /// Saturated (all-core) bandwidth, GB/s.
    pub bw_peak: f64,
    /// Threads needed to saturate bandwidth.
    pub bw_sat_threads: usize,
    /// Uncontended atomic read-modify-write cost, ns.
    pub atomic_ns: f64,
    /// Per-extra-contender multiplier on the atomic cost.
    pub atomic_contention: f64,
    /// Effective cost per byte pushed/popped on a sequential value stack, ns.
    pub stack_byte_ns: f64,
    /// Cost of one parallel-region barrier (pool fork/join), µs.
    pub barrier_us: f64,
    /// Per-tile dispatch overhead (scratch set-up, bounds resolution), ns.
    pub tile_dispatch_ns: f64,
    /// Per-point dispatch overhead of the stack-bytecode interpreter, ns.
    pub interp_point_ns: f64,
    /// Per-point overhead of the vectorized register-IR row executor, ns.
    pub rows_point_ns: f64,
    /// Per-point overhead of JIT-compiled native tiles, ns. Native code
    /// has no op-dispatch loop at all — what remains is loop/call
    /// bookkeeping, well under the rows executor's per-op lane sweeps.
    pub jit_point_ns: f64,
    /// One out-of-process `rustc` build of a fused group, seconds. Paid
    /// only for cold fingerprints — the persistent artifact cache
    /// (`PERFORAD_JIT_CACHE`) amortises it to zero across runs, which is
    /// why [`crate::ScheduleShape::jit_cold_groups`] is a separate knob
    /// rather than folded into the per-point cost.
    pub jit_compile_s: f64,
    /// Memory the checkpointing layer may spend on live trajectory
    /// snapshots, bytes. Budgets whose working set exceeds this are
    /// infeasible to [`crate::predict_checkpoint`] — the knob that turns
    /// "how much RAM does this box have" into a snapshot-count ceiling.
    pub mem_budget_bytes: usize,
    /// Cost of moving one snapshot byte into or out of the snapshot
    /// store, ns/byte. Memcpy-grade for the in-memory store; set it to
    /// the storage device's effective rate when sweeps spill to disk.
    pub snapshot_cost: f64,
}

impl Machine {
    /// Bandwidth available at a given thread count (linear ramp, capped).
    pub fn bandwidth(&self, threads: usize) -> f64 {
        let t = threads.min(self.bw_sat_threads) as f64;
        (self.bw_single * t).min(self.bw_peak)
    }

    /// Compute throughput at a given thread count (no speedup beyond cores).
    pub fn flops(&self, threads: usize) -> f64 {
        self.flops_per_core * threads.min(self.cores) as f64
    }

    /// Cost of one atomic update when `threads` contend, ns.
    pub fn atomic_cost(&self, threads: usize) -> f64 {
        self.atomic_ns * (1.0 + self.atomic_contention * (threads.saturating_sub(1)) as f64)
    }
}

/// Dual-socket E5-2650 v4, restricted to one 12-core socket like the paper.
pub fn broadwell() -> Machine {
    Machine {
        name: "Broadwell (Xeon E5-2650 v4, 1 socket / 12 cores)",
        cores: 12,
        threads_max: 12,
        flops_per_core: 8.0,
        bw_single: 12.0,
        bw_peak: 65.0,
        bw_sat_threads: 8,
        atomic_ns: 12.0,
        atomic_contention: 1.3,
        stack_byte_ns: 0.35,
        barrier_us: 8.0,
        tile_dispatch_ns: 120.0,
        interp_point_ns: 16.0,
        rows_point_ns: 2.5,
        jit_point_ns: 0.6,
        jit_compile_s: 1.5,
        // 128 GiB per node; snapshots memcpy at roughly bw_single.
        mem_budget_bytes: 128 << 30,
        snapshot_cost: 0.1,
    }
}

/// Xeon Phi 7210 (64 cores, 256 hardware threads, MCDRAM).
pub fn knl() -> Machine {
    Machine {
        name: "KNL (Xeon Phi 7210, 64 cores / 256 threads)",
        cores: 64,
        threads_max: 256,
        flops_per_core: 2.8,
        bw_single: 7.0,
        bw_peak: 340.0,
        bw_sat_threads: 48,
        atomic_ns: 40.0,
        atomic_contention: 2.0,
        stack_byte_ns: 1.1,
        barrier_us: 60.0,
        tile_dispatch_ns: 400.0,
        interp_point_ns: 45.0,
        rows_point_ns: 6.0,
        jit_point_ns: 1.6,
        jit_compile_s: 4.0,
        // 16 GiB of MCDRAM — the budget that makes checkpointing bite.
        mem_budget_bytes: 16 << 30,
        snapshot_cost: 0.15,
    }
}

/// A description of this host for the "measured" series.
///
/// The snapshot-memory budget honours `PERFORAD_MEM_BUDGET_BYTES` when
/// set (CI runs the checkpoint suite under an address-space `ulimit` and
/// tells the model about it this way), defaulting to 2 GiB.
pub fn host(cores: usize) -> Machine {
    let mem_budget_bytes = std::env::var("PERFORAD_MEM_BUDGET_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 << 30);
    Machine {
        name: "host",
        cores,
        threads_max: cores * 2,
        flops_per_core: 4.0,
        bw_single: 10.0,
        bw_peak: 20.0,
        bw_sat_threads: cores,
        atomic_ns: 15.0,
        atomic_contention: 1.2,
        stack_byte_ns: 0.5,
        // A std condvar fork/join on a handful of workers.
        barrier_us: 15.0,
        tile_dispatch_ns: 150.0,
        // Calibrated against the recorded BENCH_exec rows-vs-interpreter
        // serial speedups (several-fold, ≈3–11× across kernels and runs):
        // interpreter dispatch dominates per-point cost, the row executor
        // amortises it away.
        interp_point_ns: 20.0,
        rows_point_ns: 3.0,
        // Calibrated against BENCH_exec: native fused groups land close
        // to the build-time static kernels, several-fold under rows.
        jit_point_ns: 0.8,
        jit_compile_s: 1.5,
        // Containers and laptops: keep trajectory snapshots inside 2 GiB
        // unless overridden; snapshot copies run memcpy-grade.
        mem_budget_bytes,
        snapshot_cost: 0.1,
    }
}
