//! The replay driver: executes a [`CheckpointPlan`]'s action stream with
//! one cursor state, one snapshot store, and the caller's `step`/`back`
//! closures.
//!
//! The driver is deliberately oblivious to what a "state" or a "step"
//! is: the seismic driver passes a compiled primal plan as `step` and
//! the tuned fused/JIT adjoint schedule as `back`, so every recomputed
//! forward segment and every reverse step runs through the same fast
//! path the store-all sweep would use — checkpointing changes *where
//! states come from*, never *how steps execute*, which is why the result
//! is bitwise-identical to store-all.

use crate::error::CkptError;
use crate::plan::{CheckpointPlan, CkptAction};
use crate::store::SnapshotStore;

/// What a checkpointed sweep did: the plan's simulated profile made
/// concrete, plus store accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptReport {
    /// Sweep length.
    pub steps: usize,
    /// Snapshot budget the plan ran under (clamped).
    pub budget: usize,
    /// Primal steps re-executed during the reverse phase.
    pub recomputed_steps: usize,
    /// Maximum simultaneously live snapshots.
    pub peak_snapshots: usize,
    /// High-water mark of snapshot bytes (resident for the memory store,
    /// spilled for the disk store).
    pub peak_snapshot_bytes: usize,
    /// Snapshot store backend ("memory" / "disk").
    pub store: &'static str,
    /// *Measured* recompute ratio, from the observability layer: primal
    /// steps re-executed under `ckpt.recompute` spans, divided by
    /// `steps`. `Some` only when recording was enabled
    /// ([`perforad_obs::enabled`]) for the whole sweep; by construction
    /// it must equal [`CkptReport::recompute_ratio`], and a test pins
    /// both against [`CheckpointPlan::stats`]'s exact prediction —
    /// closing the model-vs-reality gap instead of assuming it.
    pub recompute_ratio_observed: Option<f64>,
}

impl CkptReport {
    /// Recomputed steps per primal step.
    pub fn recompute_ratio(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.recomputed_steps as f64 / self.steps as f64
        }
    }
}

/// Run a checkpointed adjoint sweep.
///
/// * `step(s, t)` advances from the state at time `t` to time `t+1`;
/// * `seed(s_T)` is called exactly once with the final state, between
///   the (streaming) forward pass and the reverse phase — evaluate the
///   objective and seed the adjoint here;
/// * `back(s, t)` reverses step `t` given the state *before* it; called
///   exactly once per `t`, in strictly descending order, so rolling
///   adjoint buffers work unchanged from a store-all sweep.
///
/// The trajectory is never materialized: at most `plan.budget()`
/// snapshots are live in `store` at any moment, plus the single cursor
/// state.
pub fn checkpointed_adjoint_plan<S>(
    plan: &CheckpointPlan,
    s0: S,
    store: &mut impl SnapshotStore<S>,
    step: &mut impl FnMut(&S, usize) -> S,
    seed: &mut impl FnMut(&S),
    back: &mut impl FnMut(&S, usize),
) -> Result<CkptReport, CkptError> {
    let mut cursor = s0;
    let mut recomputed = 0usize;
    let mut peak_live = 0usize;
    // The observed ratio is accumulated locally (not read back from the
    // process-wide counters) so concurrent sweeps in one process cannot
    // contaminate each other's reports; `obs_on` is latched once so a
    // mid-sweep toggle yields `None` semantics, not a partial count.
    let obs_on = perforad_obs::enabled();
    let mut obs_recomputed = 0u64;
    // The memoized stream: batched gradients replay one plan shape per
    // shot, so the recursive construction is paid once per shape.
    for &act in plan.actions_cached().iter() {
        match act {
            CkptAction::Advance {
                from,
                to,
                recompute,
            } => {
                let _span = if recompute {
                    perforad_obs::span!(
                        "ckpt.recompute", "ckpt", "from" => from as u64, "to" => to as u64
                    )
                } else {
                    perforad_obs::span!(
                        "ckpt.advance", "ckpt", "from" => from as u64, "to" => to as u64
                    )
                };
                for t in from..to {
                    cursor = step(&cursor, t);
                }
                if recompute {
                    recomputed += to - from;
                    if obs_on {
                        obs_recomputed += (to - from) as u64;
                        perforad_obs::counter("ckpt.recomputed_steps").add((to - from) as u64);
                    }
                }
            }
            CkptAction::Save { t } => {
                let _span = perforad_obs::span!("ckpt.save", "ckpt", "t" => t as u64);
                store.save(t, &cursor)?;
                perforad_obs::counter("ckpt.saves").inc();
                peak_live = peak_live.max(store.live());
            }
            CkptAction::Load { t } => {
                let _span = perforad_obs::span!("ckpt.load", "ckpt", "t" => t as u64);
                cursor = store.load(t)?;
                perforad_obs::counter("ckpt.loads").inc();
            }
            CkptAction::Free { t } => store.free(t)?,
            CkptAction::Seed => {
                let _span = perforad_obs::span!("ckpt.seed", "ckpt");
                seed(&cursor);
            }
            CkptAction::Back { t } => {
                let _span = perforad_obs::span!("ckpt.back", "ckpt", "t" => t as u64);
                back(&cursor, t);
            }
        }
    }
    perforad_obs::gauge("ckpt.peak_snapshot_bytes").set_max(store.peak_bytes() as u64);
    let steps = plan.steps();
    Ok(CkptReport {
        steps,
        budget: plan.budget(),
        recomputed_steps: recomputed,
        peak_snapshots: peak_live,
        peak_snapshot_bytes: store.peak_bytes(),
        store: store.label(),
        recompute_ratio_observed: obs_on.then(|| {
            if steps == 0 {
                0.0
            } else {
                obs_recomputed as f64 / steps as f64
            }
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DiskStore, MemStore};

    /// The toy nonlinear recurrence from `perforad_pde::checkpoint`:
    /// x_{t+1} = x_t + dt·x_t², J = x_T, λ_t = λ_{t+1}(1 + 2·dt·x_t).
    fn step(x: &f64, _t: usize) -> f64 {
        x + 0.01 * x * x
    }

    fn store_all_reference(x0: f64, steps: usize) -> (f64, f64) {
        let mut traj = vec![x0];
        for t in 0..steps {
            traj.push(step(&traj[t], t));
        }
        let mut lambda = 1.0;
        for t in (0..steps).rev() {
            lambda *= 1.0 + 0.02 * traj[t];
        }
        (traj[steps], lambda)
    }

    fn run_with(
        store: &mut impl SnapshotStore<f64>,
        steps: usize,
        budget: usize,
    ) -> (f64, f64, CkptReport) {
        let plan = CheckpointPlan::with_budget(steps, budget);
        let (mut xt, mut lambda) = (f64::NAN, 1.0);
        let report = checkpointed_adjoint_plan(
            &plan,
            0.8f64,
            store,
            &mut |x, t| step(x, t),
            &mut |x| xt = *x,
            &mut |x, _t| lambda *= 1.0 + 0.02 * x,
        )
        .unwrap();
        (xt, lambda, report)
    }

    #[test]
    fn matches_store_all_bitwise_across_budgets_and_backends() {
        let dir = std::env::temp_dir().join(format!("perforad_drv_test_{}", std::process::id()));
        for steps in [0usize, 1, 2, 3, 7, 16, 33, 100] {
            let (x_ref, l_ref) = store_all_reference(0.8, steps);
            for budget in [1usize, 2, 3, 6, steps.max(1), steps + 5] {
                let (x, l, rep) = run_with(&mut MemStore::new(), steps, budget);
                assert_eq!(
                    x.to_bits(),
                    x_ref.to_bits(),
                    "steps {steps} budget {budget}"
                );
                assert_eq!(
                    l.to_bits(),
                    l_ref.to_bits(),
                    "steps {steps} budget {budget}"
                );
                assert!(rep.peak_snapshots <= rep.budget);
                assert_eq!(rep.store, "memory");

                let (x, l, rep) = run_with(&mut DiskStore::new(&dir).unwrap(), steps, budget);
                assert_eq!(x.to_bits(), x_ref.to_bits(), "disk steps {steps}");
                assert_eq!(l.to_bits(), l_ref.to_bits(), "disk steps {steps}");
                assert_eq!(rep.store, "disk");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_matches_the_plan_simulation() {
        for (steps, budget) in [(50usize, 4usize), (64, 8), (100, 1), (12, 20)] {
            let plan = CheckpointPlan::with_budget(steps, budget);
            let stats = plan.stats();
            let (_, _, rep) = run_with(&mut MemStore::new(), steps, budget);
            assert_eq!(rep.recomputed_steps, stats.recomputed_steps);
            assert_eq!(rep.peak_snapshots, stats.peak_snapshots);
            assert_eq!(rep.recompute_ratio(), stats.recompute_ratio(steps));
            // 8 bytes per f64 snapshot.
            assert_eq!(rep.peak_snapshot_bytes, 8 * stats.peak_snapshots);
        }
    }

    #[test]
    fn zero_steps_seeds_without_stepping_or_backing() {
        let plan = CheckpointPlan::with_budget(0, 3);
        let mut seeded = 0;
        let rep = checkpointed_adjoint_plan(
            &plan,
            1.5f64,
            &mut MemStore::new(),
            &mut |_, _| panic!("no steps to take"),
            &mut |x| {
                assert_eq!(*x, 1.5);
                seeded += 1;
            },
            &mut |_, _| panic!("no steps to reverse"),
        )
        .unwrap();
        assert_eq!(seeded, 1);
        assert_eq!(rep.recomputed_steps, 0);
        assert_eq!(rep.peak_snapshots, 0);
        assert_eq!(rep.recompute_ratio(), 0.0);
    }

    #[test]
    fn observed_recompute_ratio_pins_the_plan_prediction() {
        // Recording off: no observation, the field stays absent.
        perforad_obs::set_enabled(false);
        let (_, _, rep) = run_with(&mut MemStore::new(), 30, 3);
        assert_eq!(rep.recompute_ratio_observed, None);

        // Recording on: what the obs layer measured must equal both the
        // report's own counting and the plan's exact simulation.
        perforad_obs::set_enabled(true);
        for (steps, budget) in [(50usize, 4usize), (64, 8), (100, 1), (33, 7), (0, 2)] {
            let plan = CheckpointPlan::with_budget(steps, budget);
            let stats = plan.stats();
            let (_, _, rep) = run_with(&mut MemStore::new(), steps, budget);
            let observed = rep
                .recompute_ratio_observed
                .expect("recording was enabled for the whole sweep");
            assert_eq!(observed, stats.recompute_ratio(steps), "steps {steps}");
            assert_eq!(observed, rep.recompute_ratio(), "steps {steps}");
        }
        perforad_obs::set_enabled(false);
        perforad_obs::clear_events();
    }

    #[test]
    fn budget_at_least_steps_never_recomputes() {
        let (_, _, rep) = run_with(&mut MemStore::new(), 40, 64);
        assert_eq!(rep.recomputed_steps, 0);
        assert_eq!(rep.budget, 40, "budget clamps to steps");
    }
}
