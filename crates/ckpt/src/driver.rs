//! The replay driver: executes a [`CheckpointPlan`]'s action stream with
//! one cursor state, one snapshot store, and the caller's `step`/`back`
//! closures.
//!
//! The driver is deliberately oblivious to what a "state" or a "step"
//! is: the seismic driver passes a compiled primal plan as `step` and
//! the tuned fused/JIT adjoint schedule as `back`, so every recomputed
//! forward segment and every reverse step runs through the same fast
//! path the store-all sweep would use — checkpointing changes *where
//! states come from*, never *how steps execute*, which is why the result
//! is bitwise-identical to store-all.

use crate::error::CkptError;
use crate::plan::{CheckpointPlan, CkptAction};
use crate::store::SnapshotStore;

/// What a checkpointed sweep did: the plan's simulated profile made
/// concrete, plus store accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptReport {
    /// Sweep length.
    pub steps: usize,
    /// Snapshot budget the plan ran under (clamped).
    pub budget: usize,
    /// Primal steps re-executed during the reverse phase.
    pub recomputed_steps: usize,
    /// Maximum simultaneously live snapshots.
    pub peak_snapshots: usize,
    /// High-water mark of snapshot bytes (resident for the memory store,
    /// spilled for the disk store).
    pub peak_snapshot_bytes: usize,
    /// Snapshot store backend ("memory" / "disk").
    pub store: &'static str,
}

impl CkptReport {
    /// Recomputed steps per primal step.
    pub fn recompute_ratio(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.recomputed_steps as f64 / self.steps as f64
        }
    }
}

/// Run a checkpointed adjoint sweep.
///
/// * `step(s, t)` advances from the state at time `t` to time `t+1`;
/// * `seed(s_T)` is called exactly once with the final state, between
///   the (streaming) forward pass and the reverse phase — evaluate the
///   objective and seed the adjoint here;
/// * `back(s, t)` reverses step `t` given the state *before* it; called
///   exactly once per `t`, in strictly descending order, so rolling
///   adjoint buffers work unchanged from a store-all sweep.
///
/// The trajectory is never materialized: at most `plan.budget()`
/// snapshots are live in `store` at any moment, plus the single cursor
/// state.
pub fn checkpointed_adjoint_plan<S>(
    plan: &CheckpointPlan,
    s0: S,
    store: &mut impl SnapshotStore<S>,
    step: &mut impl FnMut(&S, usize) -> S,
    seed: &mut impl FnMut(&S),
    back: &mut impl FnMut(&S, usize),
) -> Result<CkptReport, CkptError> {
    let mut cursor = s0;
    let mut recomputed = 0usize;
    let mut peak_live = 0usize;
    for act in plan.actions() {
        match act {
            CkptAction::Advance {
                from,
                to,
                recompute,
            } => {
                for t in from..to {
                    cursor = step(&cursor, t);
                }
                if recompute {
                    recomputed += to - from;
                }
            }
            CkptAction::Save { t } => {
                store.save(t, &cursor)?;
                peak_live = peak_live.max(store.live());
            }
            CkptAction::Load { t } => cursor = store.load(t)?,
            CkptAction::Free { t } => store.free(t)?,
            CkptAction::Seed => seed(&cursor),
            CkptAction::Back { t } => back(&cursor, t),
        }
    }
    Ok(CkptReport {
        steps: plan.steps(),
        budget: plan.budget(),
        recomputed_steps: recomputed,
        peak_snapshots: peak_live,
        peak_snapshot_bytes: store.peak_bytes(),
        store: store.label(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DiskStore, MemStore};

    /// The toy nonlinear recurrence from `perforad_pde::checkpoint`:
    /// x_{t+1} = x_t + dt·x_t², J = x_T, λ_t = λ_{t+1}(1 + 2·dt·x_t).
    fn step(x: &f64, _t: usize) -> f64 {
        x + 0.01 * x * x
    }

    fn store_all_reference(x0: f64, steps: usize) -> (f64, f64) {
        let mut traj = vec![x0];
        for t in 0..steps {
            traj.push(step(&traj[t], t));
        }
        let mut lambda = 1.0;
        for t in (0..steps).rev() {
            lambda *= 1.0 + 0.02 * traj[t];
        }
        (traj[steps], lambda)
    }

    fn run_with(
        store: &mut impl SnapshotStore<f64>,
        steps: usize,
        budget: usize,
    ) -> (f64, f64, CkptReport) {
        let plan = CheckpointPlan::with_budget(steps, budget);
        let (mut xt, mut lambda) = (f64::NAN, 1.0);
        let report = checkpointed_adjoint_plan(
            &plan,
            0.8f64,
            store,
            &mut |x, t| step(x, t),
            &mut |x| xt = *x,
            &mut |x, _t| lambda *= 1.0 + 0.02 * x,
        )
        .unwrap();
        (xt, lambda, report)
    }

    #[test]
    fn matches_store_all_bitwise_across_budgets_and_backends() {
        let dir = std::env::temp_dir().join(format!("perforad_drv_test_{}", std::process::id()));
        for steps in [0usize, 1, 2, 3, 7, 16, 33, 100] {
            let (x_ref, l_ref) = store_all_reference(0.8, steps);
            for budget in [1usize, 2, 3, 6, steps.max(1), steps + 5] {
                let (x, l, rep) = run_with(&mut MemStore::new(), steps, budget);
                assert_eq!(
                    x.to_bits(),
                    x_ref.to_bits(),
                    "steps {steps} budget {budget}"
                );
                assert_eq!(
                    l.to_bits(),
                    l_ref.to_bits(),
                    "steps {steps} budget {budget}"
                );
                assert!(rep.peak_snapshots <= rep.budget);
                assert_eq!(rep.store, "memory");

                let (x, l, rep) = run_with(&mut DiskStore::new(&dir).unwrap(), steps, budget);
                assert_eq!(x.to_bits(), x_ref.to_bits(), "disk steps {steps}");
                assert_eq!(l.to_bits(), l_ref.to_bits(), "disk steps {steps}");
                assert_eq!(rep.store, "disk");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_matches_the_plan_simulation() {
        for (steps, budget) in [(50usize, 4usize), (64, 8), (100, 1), (12, 20)] {
            let plan = CheckpointPlan::with_budget(steps, budget);
            let stats = plan.stats();
            let (_, _, rep) = run_with(&mut MemStore::new(), steps, budget);
            assert_eq!(rep.recomputed_steps, stats.recomputed_steps);
            assert_eq!(rep.peak_snapshots, stats.peak_snapshots);
            assert_eq!(rep.recompute_ratio(), stats.recompute_ratio(steps));
            // 8 bytes per f64 snapshot.
            assert_eq!(rep.peak_snapshot_bytes, 8 * stats.peak_snapshots);
        }
    }

    #[test]
    fn zero_steps_seeds_without_stepping_or_backing() {
        let plan = CheckpointPlan::with_budget(0, 3);
        let mut seeded = 0;
        let rep = checkpointed_adjoint_plan(
            &plan,
            1.5f64,
            &mut MemStore::new(),
            &mut |_, _| panic!("no steps to take"),
            &mut |x| {
                assert_eq!(*x, 1.5);
                seeded += 1;
            },
            &mut |_, _| panic!("no steps to reverse"),
        )
        .unwrap();
        assert_eq!(seeded, 1);
        assert_eq!(rep.recomputed_steps, 0);
        assert_eq!(rep.peak_snapshots, 0);
        assert_eq!(rep.recompute_ratio(), 0.0);
    }

    #[test]
    fn budget_at_least_steps_never_recomputes() {
        let (_, _, rep) = run_with(&mut MemStore::new(), 40, 64);
        assert_eq!(rep.recomputed_steps, 0);
        assert_eq!(rep.budget, 40, "budget clamps to steps");
    }
}
