//! # perforad-ckpt
//!
//! Memory-budgeted checkpointing for adjoint time loops — the layer
//! between a PDE time integrator and the scheduled adjoint executor.
//!
//! Reverse sweeps over `T` steps need the primal trajectory; storing it
//! densely caps `T` at whatever RAM allows. Checkpointing trades
//! recomputation for memory: keep a *budget* of snapshots, replay
//! forward segments from them, and reverse each segment with the same
//! fast (fused/JIT, autotuned) schedule the store-all sweep would use.
//! Hascoët & Araya-Polo frame checkpoint placement as a schedule to be
//! chosen per memory budget rather than a fixed recipe; this crate makes
//! that choice explicit and machine-optimizable:
//!
//! * [`CheckpointPlan`] — binomial (treeverse/revolve) placement for a
//!   given `(steps, budget)` pair, degenerating to store-all when the
//!   budget covers the sweep and to recompute-from-start at budget 1.
//!   Plans compile to a stream of [`CkptAction`]s and can be *simulated*
//!   ([`CheckpointPlan::stats`]) without running anything — which is how
//!   the autotuner prices a budget before committing to it.
//! * [`Snapshot`] / [`SnapshotStore`] — where states live:
//!   [`MemStore`] (clones in RAM) or [`DiskStore`] (bitwise-exact spill
//!   files, conventionally under `$PERFORAD_CKPT_DIR`).
//! * [`checkpointed_adjoint_plan`] — the replay driver: streaming
//!   forward pass (the right-most checkpoint chain is deposited on the
//!   way to the objective, not replayed), a single `seed` call with the
//!   final state, then the reverse phase, calling `back` for
//!   `t = T−1 .. 0` exactly once each in descending order.
//!
//! Every backend round-trips `f64` bit patterns exactly, so a
//! checkpointed gradient is **bitwise-identical** to its store-all
//! reference — the property the `tests/checkpoint.rs` suite pins down
//! across random step counts, budgets, and backends.

mod driver;
mod error;
mod plan;
mod store;

pub use driver::{checkpointed_adjoint_plan, CkptReport};
pub use error::CkptError;
pub use plan::{CheckpointPlan, CkptAction, PlanStats};
pub use store::{DiskStore, FallbackStore, MemStore, Snapshot, SnapshotStore, CKPT_DIR_ENV};
