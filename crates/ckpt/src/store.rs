//! Snapshot stores: where checkpointed states live between the forward
//! and reverse phases.
//!
//! Two backends ship with the crate: [`MemStore`] keeps clones in a map
//! (the fast path when the budgeted snapshots fit in RAM) and
//! [`DiskStore`] spills serialized states to files (when even the
//! budgeted snapshots do not fit — or when the operator wants RAM for
//! the solver, not the trajectory). Both round-trip `f64` payloads
//! **bitwise** — `to_le_bytes`/`from_le_bytes` on the raw bit patterns —
//! which is what makes a checkpointed gradient bit-identical to the
//! store-all reference regardless of backend.

use crate::error::CkptError;
use perforad_exec::Grid;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Environment variable naming the default spill directory for
/// [`DiskStore::from_env`] consumers (the seismic driver's `Auto`
/// backend): when set, snapshots spill to disk instead of living in RAM.
pub const CKPT_DIR_ENV: &str = "PERFORAD_CKPT_DIR";

/// A state that can be checkpointed: sized in memory and serializable to
/// a byte stream that round-trips **bitwise**.
pub trait Snapshot: Sized {
    /// Serialize to bytes (little-endian `f64` bit patterns).
    fn to_bytes(&self) -> Vec<u8>;
    /// Deserialize; must reproduce the exact value `to_bytes` consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError>;
    /// Approximate resident size, for budget accounting.
    fn mem_bytes(&self) -> usize;
}

fn read_u64(bytes: &[u8], at: &mut usize) -> Result<u64, CkptError> {
    let end = *at + 8;
    let chunk: [u8; 8] = bytes
        .get(*at..end)
        .ok_or_else(|| CkptError::Corrupt(format!("truncated at byte {at}")))?
        .try_into()
        .expect("8-byte slice");
    *at = end;
    Ok(u64::from_le_bytes(chunk))
}

impl Snapshot for f64 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut at = 0;
        Ok(f64::from_bits(read_u64(bytes, &mut at)?))
    }

    fn mem_bytes(&self) -> usize {
        8
    }
}

impl Snapshot for Grid {
    fn to_bytes(&self) -> Vec<u8> {
        let dims = self.dims();
        let mut out = Vec::with_capacity(8 * (1 + dims.len() + self.len()));
        out.extend_from_slice(&(dims.len() as u64).to_le_bytes());
        for &d in dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for v in self.as_slice() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut at = 0;
        let rank = read_u64(bytes, &mut at)? as usize;
        if rank > 16 {
            return Err(CkptError::Corrupt(format!("implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(bytes, &mut at)? as usize);
        }
        // Validate the payload length against the header *before*
        // allocating: a corrupt header must yield Err, not a huge
        // (or overflowing) allocation.
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| CkptError::Corrupt(format!("dims {dims:?} overflow")))?;
        let expected = len
            .checked_mul(8)
            .and_then(|b| b.checked_add(at))
            .ok_or_else(|| CkptError::Corrupt(format!("dims {dims:?} overflow")))?;
        if bytes.len() != expected {
            return Err(CkptError::Corrupt(format!(
                "{} bytes for a {dims:?} grid (expected {expected})",
                bytes.len()
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f64::from_bits(read_u64(bytes, &mut at)?));
        }
        Ok(Grid::from_vec(&dims, data))
    }

    fn mem_bytes(&self) -> usize {
        8 * self.len() + 8 * 2 * self.rank() + std::mem::size_of::<Grid>()
    }
}

/// Pairs serialize as a length-prefixed concatenation — the seismic time
/// loop's `(u_{t−1}, u_t)` state.
impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn to_bytes(&self) -> Vec<u8> {
        let a = self.0.to_bytes();
        let b = self.1.to_bytes();
        let mut out = Vec::with_capacity(8 + a.len() + b.len());
        out.extend_from_slice(&(a.len() as u64).to_le_bytes());
        out.extend_from_slice(&a);
        out.extend_from_slice(&b);
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut at = 0;
        let alen = read_u64(bytes, &mut at)? as usize;
        let rest = bytes
            .get(at..)
            .ok_or_else(|| CkptError::Corrupt("truncated pair".into()))?;
        if alen > rest.len() {
            return Err(CkptError::Corrupt("truncated pair head".into()));
        }
        Ok((A::from_bytes(&rest[..alen])?, B::from_bytes(&rest[alen..])?))
    }

    fn mem_bytes(&self) -> usize {
        self.0.mem_bytes() + self.1.mem_bytes()
    }
}

/// Where snapshots go. Keyed by the time index `t` — the plan guarantees
/// a key is saved at most once before being freed, and only live keys are
/// loaded or freed.
pub trait SnapshotStore<S> {
    /// Store the state at time `t`.
    fn save(&mut self, t: usize, state: &S) -> Result<(), CkptError>;
    /// Restore the state at time `t` (which must be live).
    fn load(&mut self, t: usize) -> Result<S, CkptError>;
    /// Drop the snapshot at time `t` (which must be live).
    fn free(&mut self, t: usize) -> Result<(), CkptError>;
    /// Snapshots currently live.
    fn live(&self) -> usize;
    /// High-water mark of resident/spilled snapshot bytes.
    fn peak_bytes(&self) -> usize;
    /// Short backend name for reports.
    fn label(&self) -> &'static str;
}

/// In-memory snapshot store: clones in a map.
#[derive(Debug)]
pub struct MemStore<S> {
    slots: HashMap<usize, S>,
    bytes: usize,
    peak: usize,
}

impl<S> MemStore<S> {
    pub fn new() -> Self {
        MemStore {
            slots: HashMap::new(),
            bytes: 0,
            peak: 0,
        }
    }
}

impl<S> Default for MemStore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone + Snapshot> SnapshotStore<S> for MemStore<S> {
    fn save(&mut self, t: usize, state: &S) -> Result<(), CkptError> {
        if self.slots.contains_key(&t) {
            return Err(CkptError::Protocol(format!("double save at {t}")));
        }
        self.bytes += state.mem_bytes();
        self.peak = self.peak.max(self.bytes);
        perforad_obs::counter("ckpt.save_bytes").add(state.mem_bytes() as u64);
        self.slots.insert(t, state.clone());
        Ok(())
    }

    fn load(&mut self, t: usize) -> Result<S, CkptError> {
        let state = self
            .slots
            .get(&t)
            .cloned()
            .ok_or_else(|| CkptError::Protocol(format!("load of dead snapshot {t}")))?;
        perforad_obs::counter("ckpt.load_bytes").add(state.mem_bytes() as u64);
        Ok(state)
    }

    fn free(&mut self, t: usize) -> Result<(), CkptError> {
        let state = self
            .slots
            .remove(&t)
            .ok_or_else(|| CkptError::Protocol(format!("free of dead snapshot {t}")))?;
        self.bytes -= state.mem_bytes();
        Ok(())
    }

    fn live(&self) -> usize {
        self.slots.len()
    }

    fn peak_bytes(&self) -> usize {
        self.peak
    }

    fn label(&self) -> &'static str {
        "memory"
    }
}

/// Spill-to-disk snapshot store: one file per live snapshot under a
/// directory of the caller's choosing (conventionally `$PERFORAD_CKPT_DIR`).
/// Files are uniquely named per store instance and removed on `free` and
/// on drop, so concurrent sweeps sharing a directory never collide.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    tag: String,
    live: HashMap<usize, usize>, // t -> file bytes
    bytes: usize,
    peak: usize,
}

impl DiskStore {
    /// Spill into `dir`, creating it if needed.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, CkptError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| CkptError::Store(format!("create {}: {e}", dir.display())))?;
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(DiskStore {
            dir,
            tag: format!("{}_{}", std::process::id(), seq),
            live: HashMap::new(),
            bytes: 0,
            peak: 0,
        })
    }

    /// The spill directory named by [`CKPT_DIR_ENV`], if set.
    pub fn from_env() -> Option<Result<Self, CkptError>> {
        std::env::var_os(CKPT_DIR_ENV).map(Self::new)
    }

    /// The per-instance spill-file tag (`pid_seq`): unique within a
    /// process, which is what lets concurrent sweeps — every shot of a
    /// batched gradient — share one spill directory without collisions.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    fn path(&self, t: usize) -> PathBuf {
        self.dir.join(format!("ckpt_{}_{t}.bin", self.tag))
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        // Sweep by tag prefix rather than walking `self.live`: a panic
        // between the `fs::write` and the `live.insert` in `save` (or a
        // panicking sweep swallowed by `catch_unwind` upstream) can leave
        // spill files the map never learned about. The tag is unique per
        // instance, so the scan cannot touch a concurrent store's files.
        let prefix = format!("ckpt_{}_", self.tag);
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if e.file_name().to_string_lossy().starts_with(&prefix) {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }
}

impl<S: Snapshot> SnapshotStore<S> for DiskStore {
    fn save(&mut self, t: usize, state: &S) -> Result<(), CkptError> {
        if self.live.contains_key(&t) {
            return Err(CkptError::Protocol(format!("double save at {t}")));
        }
        let bytes = state.to_bytes();
        let path = self.path(t);
        if perforad_obs::fault::should_fail("ckpt.disk.write") {
            return Err(CkptError::Store(format!(
                "write {}: injected fault (ckpt.disk.write)",
                path.display()
            )));
        }
        std::fs::write(&path, &bytes)
            .map_err(|e| CkptError::Store(format!("write {}: {e}", path.display())))?;
        self.bytes += bytes.len();
        self.peak = self.peak.max(self.bytes);
        perforad_obs::counter("ckpt.save_bytes").add(bytes.len() as u64);
        perforad_obs::counter("ckpt.spill_bytes").add(bytes.len() as u64);
        self.live.insert(t, bytes.len());
        Ok(())
    }

    fn load(&mut self, t: usize) -> Result<S, CkptError> {
        if !self.live.contains_key(&t) {
            return Err(CkptError::Protocol(format!("load of dead snapshot {t}")));
        }
        let path = self.path(t);
        if perforad_obs::fault::should_fail("ckpt.disk.read") {
            return Err(CkptError::Store(format!(
                "read {}: injected fault (ckpt.disk.read)",
                path.display()
            )));
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| CkptError::Store(format!("read {}: {e}", path.display())))?;
        perforad_obs::counter("ckpt.load_bytes").add(bytes.len() as u64);
        S::from_bytes(&bytes)
    }

    fn free(&mut self, t: usize) -> Result<(), CkptError> {
        let size = self
            .live
            .remove(&t)
            .ok_or_else(|| CkptError::Protocol(format!("free of dead snapshot {t}")))?;
        self.bytes -= size;
        let _ = std::fs::remove_file(self.path(t));
        Ok(())
    }

    fn live(&self) -> usize {
        self.live.len()
    }

    fn peak_bytes(&self) -> usize {
        self.peak
    }

    fn label(&self) -> &'static str {
        "disk"
    }
}

/// Disk-first store with an in-memory overflow: every save tries the
/// [`DiskStore`] and, on a write failure (full disk, injected
/// `ckpt.disk.write` fault), keeps the snapshot in a [`MemStore`]
/// instead — counted in `ckpt.spill_fallbacks`. Loads and frees route
/// to wherever the key landed, so a sweep survives any number of failed
/// spills with a **bitwise-identical** result (both backends round-trip
/// `f64` bit patterns).
///
/// A *read* failure is not absorbable here — the bytes are gone — so it
/// propagates as `Err` and the caller decides (the seismic driver
/// re-runs the whole sweep in memory).
#[derive(Debug)]
pub struct FallbackStore<S> {
    disk: DiskStore,
    mem: MemStore<S>,
    /// Keys that fell back to memory.
    in_mem: std::collections::HashSet<usize>,
    fallbacks: usize,
}

impl<S> FallbackStore<S> {
    pub fn new(disk: DiskStore) -> Self {
        FallbackStore {
            disk,
            mem: MemStore::new(),
            in_mem: std::collections::HashSet::new(),
            fallbacks: 0,
        }
    }

    /// How many saves fell back to memory.
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl<S: Clone + Snapshot> SnapshotStore<S> for FallbackStore<S> {
    fn save(&mut self, t: usize, state: &S) -> Result<(), CkptError> {
        if self.in_mem.contains(&t) {
            return Err(CkptError::Protocol(format!("double save at {t}")));
        }
        match self.disk.save(t, state) {
            Ok(()) => Ok(()),
            Err(CkptError::Protocol(m)) => Err(CkptError::Protocol(m)),
            Err(_) => {
                self.fallbacks += 1;
                perforad_obs::counter("ckpt.spill_fallbacks").inc();
                self.in_mem.insert(t);
                self.mem.save(t, state)
            }
        }
    }

    fn load(&mut self, t: usize) -> Result<S, CkptError> {
        if self.in_mem.contains(&t) {
            self.mem.load(t)
        } else {
            self.disk.load(t)
        }
    }

    fn free(&mut self, t: usize) -> Result<(), CkptError> {
        if self.in_mem.remove(&t) {
            self.mem.free(t)
        } else {
            SnapshotStore::<S>::free(&mut self.disk, t)
        }
    }

    fn live(&self) -> usize {
        SnapshotStore::<S>::live(&self.disk) + self.mem.live()
    }

    fn peak_bytes(&self) -> usize {
        // Peaks of the two halves need not coincide in time; the sum is
        // the conservative high-water mark.
        SnapshotStore::<S>::peak_bytes(&self.disk) + self.mem.peak_bytes()
    }

    fn label(&self) -> &'static str {
        // "disk" until a save actually fell back — a fault-free sweep
        // reports exactly what a bare DiskStore would.
        if self.fallbacks == 0 {
            "disk"
        } else {
            "disk+mem"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault-injection state is process-global, so every test that
    /// drives a `DiskStore` serialises here — an armed window must not
    /// leak into a neighbouring test's saves.
    static STORE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        STORE_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn grid() -> Grid {
        Grid::from_fn(&[3, 4], |ix| (ix[0] * 7 + ix[1]) as f64 * 0.1 - 1.5)
    }

    #[test]
    fn grid_bytes_round_trip_bitwise() {
        let g = grid();
        let back = Grid::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(back.dims(), g.dims());
        for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Non-finite and signed-zero payloads survive too.
        let odd = Grid::from_vec(&[4], vec![f64::NAN, -0.0, f64::INFINITY, 1e-308]);
        let back = Grid::from_bytes(&odd.to_bytes()).unwrap();
        for (a, b) in odd.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pair_and_scalar_round_trip() {
        let pair = (grid(), 2.5f64);
        let back = <(Grid, f64)>::from_bytes(&pair.to_bytes()).unwrap();
        assert_eq!(back.0.as_slice(), pair.0.as_slice());
        assert_eq!(back.1, 2.5);
        assert!(pair.mem_bytes() > 8 * 12);
    }

    #[test]
    fn corrupt_bytes_error_cleanly() {
        assert!(Grid::from_bytes(&[1, 2, 3]).is_err());
        let mut bytes = grid().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Grid::from_bytes(&bytes),
            Err(CkptError::Corrupt(_))
        ));
        assert!(<(Grid, Grid)>::from_bytes(&[9, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // A header whose dims imply a gigantic (or overflowing) payload
        // must fail the length check, never reach the allocator.
        let mut evil = Vec::new();
        evil.extend_from_slice(&1u64.to_le_bytes());
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Grid::from_bytes(&evil),
            Err(CkptError::Corrupt(_))
        ));
        let mut deep = Vec::new();
        deep.extend_from_slice(&1000u64.to_le_bytes());
        assert!(matches!(
            Grid::from_bytes(&deep),
            Err(CkptError::Corrupt(_))
        ));
    }

    fn exercise(store: &mut impl SnapshotStore<Grid>) {
        let g = grid();
        store.save(0, &g).unwrap();
        store.save(7, &g).unwrap();
        assert_eq!(store.live(), 2);
        // Double save and dead load/free are protocol errors.
        assert!(store.save(7, &g).is_err());
        assert!(store.load(3).is_err());
        assert!(store.free(3).is_err());
        let back = store.load(7).unwrap();
        assert_eq!(back.as_slice(), g.as_slice());
        store.free(7).unwrap();
        store.free(0).unwrap();
        assert_eq!(store.live(), 0);
        assert!(store.peak_bytes() >= 2 * 8 * 12);
    }

    #[test]
    fn mem_store_contract() {
        let mut store = MemStore::new();
        exercise(&mut store);
        assert_eq!(
            <MemStore<Grid> as SnapshotStore<Grid>>::label(&store),
            "memory"
        );
    }

    #[test]
    fn disk_store_contract_and_cleanup() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("perforad_ckpt_test_{}", std::process::id()));
        {
            let mut store = DiskStore::new(&dir).unwrap();
            exercise(&mut store);
            assert_eq!(<DiskStore as SnapshotStore<Grid>>::label(&store), "disk");
            // Leave one live snapshot to exercise Drop cleanup.
            store.save(42, &grid()).unwrap();
            let files = std::fs::read_dir(&dir).unwrap().count();
            assert_eq!(files, 1);
        }
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 0, "drop must remove live snapshot files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_store_absorbs_write_faults_bitwise() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("perforad_ckpt_fb_{}", std::process::id()));
        let mut store = FallbackStore::new(DiskStore::new(&dir).unwrap());
        let g = grid();
        // Fault exactly the first write: snapshot 0 lands in memory,
        // snapshot 1 on disk.
        perforad_obs::fault::arm("ckpt.disk.write=fail@1").unwrap();
        store.save(0, &g).unwrap();
        store.save(1, &g).unwrap();
        perforad_obs::fault::disarm();
        assert_eq!(store.fallbacks(), 1);
        assert_eq!(store.live(), 2);
        for t in [0usize, 1] {
            let back: Grid = store.load(t).unwrap();
            for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Protocol errors are NOT absorbed — a double save is a bug in
        // the plan, not an environmental failure.
        assert!(matches!(store.save(0, &g), Err(CkptError::Protocol(_))));
        assert!(matches!(store.save(1, &g), Err(CkptError::Protocol(_))));
        store.free(0).unwrap();
        store.free(1).unwrap();
        assert_eq!(store.live(), 0);
        assert_eq!(
            <FallbackStore<Grid> as SnapshotStore<Grid>>::label(&store),
            "disk+mem"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_read_fault_surfaces_as_store_error() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("perforad_ckpt_rf_{}", std::process::id()));
        let mut store = DiskStore::new(&dir).unwrap();
        store.save(3, &grid()).unwrap();
        perforad_obs::fault::arm("ckpt.disk.read=fail").unwrap();
        let got: Result<Grid, _> = store.load(3);
        perforad_obs::fault::disarm();
        assert!(matches!(got, Err(CkptError::Store(_))));
        // The snapshot file itself is untouched; a fault-free retry works.
        let back: Grid = store.load(3).unwrap();
        assert_eq!(back.as_slice(), grid().as_slice());
        SnapshotStore::<Grid>::free(&mut store, 3).unwrap();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_sweeps_untracked_spill_files_after_a_panic() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("perforad_ckpt_panic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut store = DiskStore::new(&dir).unwrap();
            store.save(0, &grid()).unwrap();
            // Orphan a file the live map never learns about — the shape
            // of a panic between `fs::write` and `live.insert`.
            std::fs::write(dir.join(format!("ckpt_{}_99.bin", store.tag())), b"orphan").unwrap();
            panic!("injected panic mid-sweep");
        }));
        assert!(caught.is_err());
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 0, "Drop must sweep tracked and orphaned spill files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_disk_stores_share_a_directory_without_collisions() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("perforad_ckpt_shared_{}", std::process::id()));
        let mut a = DiskStore::new(&dir).unwrap();
        let mut b = DiskStore::new(&dir).unwrap();
        assert_ne!(a.tag(), b.tag(), "instance tags must be unique");
        let (ga, gb) = (Grid::full(&[4], 1.0), Grid::full(&[4], 2.0));
        a.save(0, &ga).unwrap();
        b.save(0, &gb).unwrap();
        let la: Grid = a.load(0).unwrap();
        let lb: Grid = b.load(0).unwrap();
        assert_eq!(la.as_slice(), ga.as_slice());
        assert_eq!(lb.as_slice(), gb.as_slice());
        SnapshotStore::<Grid>::free(&mut a, 0).unwrap();
        SnapshotStore::<Grid>::free(&mut b, 0).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
