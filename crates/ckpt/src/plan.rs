//! Checkpoint placement: the binomial (treeverse/revolve) schedule.
//!
//! A [`CheckpointPlan`] fixes two numbers — the sweep length `steps` and
//! the snapshot `budget` (maximum simultaneously live snapshots) — and
//! from them derives a deterministic stream of [`CkptAction`]s that a
//! driver executes with one cursor state and one snapshot store. The
//! placement follows Griewank's binomial rule: with `c` snapshots and
//! repetition number `r`, sweeps up to `C(c+r, c)` steps are reversible,
//! and the split point of a segment of length `l` advances
//! `l − C(c+r−1, c−1)` steps (clamped into range) before saving. At exact
//! binomial lengths this is the provably optimal revolve schedule; in
//! between it stays within the same repetition number. The two budget
//! extremes degenerate exactly as they should: `budget ≥ steps` is
//! store-all (zero recomputation) and `budget = 1` is recompute-from-
//! the-start (quadratic recomputation, constant memory).
//!
//! The first forward pass is *streaming*: the driver has to advance to
//! the final state anyway (the objective needs it), so the schedule
//! deposits the right-most checkpoint chain during that pass instead of
//! replaying it — the recomputation the stats report is pure reverse-
//! sweep overhead on top of one primal and one adjoint sweep.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One primitive of a checkpointed reverse sweep, interpreted by
/// [`checkpointed_adjoint_plan`](crate::checkpointed_adjoint_plan) (or by
/// the stats simulator, which walks the same stream without any state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptAction {
    /// Advance the cursor from the state at time `from` to the state at
    /// time `to` by calling `step` for `t = from .. to`. `recompute` is
    /// false only for the initial streaming pass (work the objective
    /// evaluation pays anyway).
    Advance {
        from: usize,
        to: usize,
        recompute: bool,
    },
    /// Save the cursor (the state at time `t`) into the snapshot store.
    Save { t: usize },
    /// Replace the cursor with the stored state at time `t`.
    Load { t: usize },
    /// Drop the stored state at time `t`.
    Free { t: usize },
    /// The cursor holds the final state `s_T`; the driver hands it to the
    /// caller's `seed` closure (misfit + adjoint seeding) exactly once,
    /// between the forward and reverse phases.
    Seed,
    /// Reverse step `t`: the cursor holds the state *before* step `t`.
    /// Emitted exactly once per `t`, in strictly descending order.
    Back { t: usize },
}

/// Memory/recompute profile of a plan, simulated from its action stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Primal steps re-executed during the reverse phase (on top of the
    /// single streaming forward pass).
    pub recomputed_steps: usize,
    /// Maximum simultaneously live snapshots (≤ budget).
    pub peak_snapshots: usize,
    /// Total snapshot save events.
    pub saves: usize,
    /// Total snapshot load events.
    pub loads: usize,
}

impl PlanStats {
    /// Recomputed steps per primal step — 0.0 for store-all, `(T−1)/2`
    /// for budget 1.
    pub fn recompute_ratio(&self, steps: usize) -> f64 {
        if steps == 0 {
            0.0
        } else {
            self.recomputed_steps as f64 / steps as f64
        }
    }
}

/// Saturating binomial coefficient `C(n, k)` — the schedule only ever
/// compares it against sweep lengths, so saturation is harmless.
pub(crate) fn binom(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

/// Minimal repetition number `r ≥ 1` with `C(c + r, c) ≥ len`.
fn repetition(len: usize, c: usize) -> usize {
    let mut r = 1;
    while binom(c + r, c) < len {
        r += 1;
    }
    r
}

/// Binomial split: how far to advance from the left edge of a segment of
/// `len` steps before saving, given `avail ≥ 1` snapshot slots still free.
/// Clamped to `[1, len − 1]`; exactly the revolve split at binomial
/// lengths.
fn advance_by(len: usize, avail: usize) -> usize {
    debug_assert!(len >= 2 && avail >= 1);
    let r = repetition(len, avail);
    len.saturating_sub(binom(avail + r - 1, avail - 1))
        .clamp(1, len - 1)
}

/// Distinct `(steps, budget)` shapes the [`CheckpointPlan::actions_cached`]
/// memo holds before resetting.
const ACTION_CACHE_CAP: usize = 256;

/// A memory-budgeted checkpoint schedule for a `steps`-long time loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPlan {
    steps: usize,
    budget: usize,
}

impl CheckpointPlan {
    /// Budgeted plan: at most `budget` snapshots live at once. The budget
    /// is clamped into `[1, max(steps, 1)]` — zero-budget reversal is
    /// impossible (the initial state must be storable) and more than
    /// `steps` snapshots can never be used.
    pub fn with_budget(steps: usize, budget: usize) -> Self {
        CheckpointPlan {
            steps,
            budget: budget.clamp(1, steps.max(1)),
        }
    }

    /// The zero-recompute plan: one snapshot per step.
    pub fn store_all(steps: usize) -> Self {
        Self::with_budget(steps, steps.max(1))
    }

    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The clamped snapshot budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Live-snapshot memory ceiling for a given per-snapshot size.
    pub fn mem_bytes(&self, state_bytes: usize) -> usize {
        self.budget.saturating_mul(state_bytes)
    }

    /// The full action stream: streaming forward pass (depositing the
    /// right-most checkpoint chain), `Seed`, then the recursive reverse
    /// phase. `steps == 0` degenerates to `[Seed]`.
    pub fn actions(&self) -> Vec<CkptAction> {
        let mut acts = Vec::new();
        if self.steps == 0 {
            acts.push(CkptAction::Seed);
            return acts;
        }
        // Forward phase: advance to T, saving the chain of right-most
        // checkpoints the reverse recursion will want first.
        acts.push(CkptAction::Save { t: 0 });
        let (mut lo, hi) = (0usize, self.steps);
        let mut avail = self.budget - 1;
        // Left segments to reverse after the one containing T, outermost
        // first: (lo, mid, slots available when its turn comes).
        let mut segs: Vec<(usize, usize, usize)> = Vec::new();
        while hi - lo > 1 && avail > 0 {
            let m = advance_by(hi - lo, avail);
            acts.push(CkptAction::Advance {
                from: lo,
                to: lo + m,
                recompute: false,
            });
            acts.push(CkptAction::Save { t: lo + m });
            segs.push((lo, lo + m, avail));
            lo += m;
            avail -= 1;
        }
        if hi > lo {
            acts.push(CkptAction::Advance {
                from: lo,
                to: hi,
                recompute: false,
            });
        }
        acts.push(CkptAction::Seed);
        // Reverse phase: the terminal segment first, then the stored left
        // segments inside-out, each freeing the snapshot that anchored
        // the segment to its right.
        self.reverse_segment(&mut acts, lo, hi, avail);
        for &(slo, smid, savail) in segs.iter().rev() {
            acts.push(CkptAction::Free { t: smid });
            self.reverse_segment(&mut acts, slo, smid, savail);
        }
        acts.push(CkptAction::Free { t: 0 });
        acts
    }

    /// Reverse `[lo, hi)` given a live snapshot at `lo` and `avail` free
    /// slots: the classic treeverse recursion.
    fn reverse_segment(&self, acts: &mut Vec<CkptAction>, lo: usize, hi: usize, avail: usize) {
        if hi == lo {
            return;
        }
        if hi - lo == 1 {
            acts.push(CkptAction::Load { t: lo });
            acts.push(CkptAction::Back { t: lo });
            return;
        }
        if avail == 0 {
            // No slots left: recompute each state from `lo`. Quadratic in
            // the segment length — exactly the budget-1 degenerate case.
            for t in (lo..hi).rev() {
                acts.push(CkptAction::Load { t: lo });
                if t > lo {
                    acts.push(CkptAction::Advance {
                        from: lo,
                        to: t,
                        recompute: true,
                    });
                }
                acts.push(CkptAction::Back { t });
            }
            return;
        }
        let m = advance_by(hi - lo, avail);
        acts.push(CkptAction::Load { t: lo });
        acts.push(CkptAction::Advance {
            from: lo,
            to: lo + m,
            recompute: true,
        });
        acts.push(CkptAction::Save { t: lo + m });
        self.reverse_segment(acts, lo + m, hi, avail - 1);
        acts.push(CkptAction::Free { t: lo + m });
        self.reverse_segment(acts, lo, lo + m, avail);
    }

    /// [`CheckpointPlan::actions`] behind a process-wide memo keyed on
    /// `(steps, budget)`: the stream is derived once and shared via
    /// `Arc`, so drivers that replay the same plan shape — every shot of
    /// a batched seismic gradient, every iteration of an inversion loop —
    /// skip the recursive construction. The cache is bounded (it resets
    /// past [`ACTION_CACHE_CAP`] distinct shapes, far more than any
    /// workload sweeps) and the entries are immutable, so sharing across
    /// threads is free.
    pub fn actions_cached(&self) -> Arc<Vec<CkptAction>> {
        type ActionCache = Mutex<HashMap<(usize, usize), Arc<Vec<CkptAction>>>>;
        static CACHE: OnceLock<ActionCache> = OnceLock::new();
        let mut map = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let key = (self.steps, self.budget);
        if map.len() >= ACTION_CACHE_CAP && !map.contains_key(&key) {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(self.actions())))
    }

    /// Simulate the action stream without any state: recompute count,
    /// peak snapshot liveness, store traffic.
    pub fn stats(&self) -> PlanStats {
        let mut stats = PlanStats::default();
        let mut live = 0usize;
        for &act in self.actions_cached().iter() {
            match act {
                CkptAction::Advance {
                    from,
                    to,
                    recompute,
                } => {
                    if recompute {
                        stats.recomputed_steps += to - from;
                    }
                }
                CkptAction::Save { .. } => {
                    stats.saves += 1;
                    live += 1;
                    stats.peak_snapshots = stats.peak_snapshots.max(live);
                }
                CkptAction::Free { .. } => live -= 1,
                CkptAction::Load { .. } => stats.loads += 1,
                CkptAction::Seed | CkptAction::Back { .. } => {}
            }
        }
        stats
    }

    /// Recomputed steps per primal step under this plan.
    pub fn recompute_ratio(&self) -> f64 {
        self.stats().recompute_ratio(self.steps)
    }

    /// The [`perforad_perfmodel::CheckpointShape`] this plan presents to
    /// the analytic model, for a given per-snapshot byte size.
    pub fn shape(&self, state_bytes: usize) -> perforad_perfmodel::CheckpointShape {
        let stats = self.stats();
        perforad_perfmodel::CheckpointShape {
            steps: self.steps,
            budget: self.budget,
            state_bytes,
            recompute_ratio: stats.recompute_ratio(self.steps),
            saves: stats.saves,
            loads: stats.loads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Walk an action stream asserting every structural invariant: loads
    /// and frees only touch live snapshots, the cursor is positioned
    /// correctly for every advance and back, backs are exactly `T-1..0`,
    /// liveness never exceeds the budget, and seed happens exactly once
    /// with the cursor at `T`.
    fn validate(plan: &CheckpointPlan) -> PlanStats {
        let steps = plan.steps();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut peak = 0usize;
        let mut cursor: Option<usize> = Some(0); // time index the cursor holds
        let mut backs = Vec::new();
        let mut seeded = false;
        for act in plan.actions() {
            match act {
                CkptAction::Advance {
                    from,
                    to,
                    recompute: _,
                } => {
                    assert_eq!(cursor, Some(from), "advance from a mispositioned cursor");
                    assert!(from < to && to <= steps);
                    cursor = Some(to);
                }
                CkptAction::Save { t } => {
                    assert_eq!(cursor, Some(t), "save of a state the cursor does not hold");
                    assert!(live.insert(t), "double save at {t}");
                    peak = peak.max(live.len());
                }
                CkptAction::Load { t } => {
                    assert!(live.contains(&t), "load of dead snapshot {t}");
                    cursor = Some(t);
                }
                CkptAction::Free { t } => {
                    assert!(live.remove(&t), "free of dead snapshot {t}");
                }
                CkptAction::Seed => {
                    assert!(!seeded, "seed emitted twice");
                    assert_eq!(cursor, Some(steps), "seed away from the final state");
                    seeded = true;
                }
                CkptAction::Back { t } => {
                    assert!(seeded, "back before seed");
                    assert_eq!(cursor, Some(t), "back at a mispositioned cursor");
                    backs.push(t);
                }
            }
        }
        assert!(seeded);
        assert!(live.is_empty(), "snapshots leaked: {live:?}");
        assert_eq!(
            backs,
            (0..steps).rev().collect::<Vec<_>>(),
            "backs must be T-1..0 exactly once each"
        );
        let stats = plan.stats();
        assert_eq!(stats.peak_snapshots, peak);
        assert!(peak <= plan.budget(), "budget exceeded: {peak}");
        stats
    }

    #[test]
    fn every_plan_is_structurally_valid() {
        for steps in [0usize, 1, 2, 3, 5, 7, 8, 16, 17, 33, 100, 255] {
            for budget in [1usize, 2, 3, 5, 8, 1000] {
                validate(&CheckpointPlan::with_budget(steps, budget));
            }
        }
    }

    #[test]
    fn store_all_never_recomputes() {
        for steps in [1usize, 2, 9, 64, 100] {
            let plan = CheckpointPlan::store_all(steps);
            let stats = validate(&plan);
            assert_eq!(stats.recomputed_steps, 0, "steps {steps}");
            assert_eq!(plan.recompute_ratio(), 0.0);
        }
        // Any budget ≥ steps behaves identically.
        let stats = CheckpointPlan::with_budget(10, 99).stats();
        assert_eq!(stats.recomputed_steps, 0);
    }

    #[test]
    fn budget_one_is_quadratic_and_constant_memory() {
        for steps in [1usize, 2, 7, 20] {
            let plan = CheckpointPlan::with_budget(steps, 1);
            let stats = validate(&plan);
            assert_eq!(stats.peak_snapshots, 1);
            // The terminal segment is the whole sweep: T(T-1)/2 recompute.
            assert_eq!(stats.recomputed_steps, steps * (steps - 1) / 2);
        }
    }

    #[test]
    fn binomial_lengths_meet_the_revolve_bound() {
        // With c snapshots and repetition r, revolve reverses
        // l = C(c+r, c) steps recomputing at most r·l − l steps beyond
        // the streaming forward pass (r·l total primal executions,
        // one of which the objective pays).
        for (c, r) in [(2usize, 2usize), (2, 3), (3, 2), (3, 3), (4, 2), (5, 3)] {
            let l = binom(c + r, c);
            let plan = CheckpointPlan::with_budget(l, c + 1);
            let stats = validate(&plan);
            assert!(
                stats.recomputed_steps <= (r - 1) * l + (l - 1),
                "c={c} r={r} l={l}: {stats:?}"
            );
        }
    }

    #[test]
    fn ratio_decreases_monotonically_with_budget() {
        let steps = 200;
        let mut last = f64::INFINITY;
        for budget in [1usize, 2, 4, 8, 16, 32, 64, 200] {
            let ratio = CheckpointPlan::with_budget(steps, budget).recompute_ratio();
            assert!(
                ratio <= last,
                "budget {budget}: ratio {ratio} rose above {last}"
            );
            last = ratio;
        }
        assert_eq!(last, 0.0);
    }

    #[test]
    fn budget_is_clamped_into_range() {
        assert_eq!(CheckpointPlan::with_budget(10, 0).budget(), 1);
        assert_eq!(CheckpointPlan::with_budget(10, 1 << 40).budget(), 10);
        assert_eq!(CheckpointPlan::with_budget(0, 0).budget(), 1);
        assert_eq!(
            CheckpointPlan::with_budget(0, 5).actions(),
            vec![CkptAction::Seed]
        );
    }

    #[test]
    fn shape_reports_the_simulated_profile() {
        let plan = CheckpointPlan::with_budget(100, 5);
        let stats = plan.stats();
        let shape = plan.shape(4096);
        assert_eq!(shape.steps, 100);
        assert_eq!(shape.budget, 5);
        assert_eq!(shape.state_bytes, 4096);
        assert_eq!(shape.saves, stats.saves);
        assert_eq!(shape.loads, stats.loads);
        assert!(shape.recompute_ratio > 0.0);
        assert_eq!(plan.mem_bytes(4096), 5 * 4096);
    }

    #[test]
    fn cached_actions_share_one_allocation_and_match_fresh_construction() {
        let plan = CheckpointPlan::with_budget(97, 6);
        let first = plan.actions_cached();
        // Pointer reuse: the same plan shape returns the same Arc, from
        // this or any other CheckpointPlan value.
        let second = CheckpointPlan::with_budget(97, 6).actions_cached();
        assert!(Arc::ptr_eq(&first, &second), "memo must share the stream");
        // Structural reuse: the cached stream is the fresh construction.
        assert_eq!(*first, plan.actions());
        // A different shape gets its own stream.
        let other = CheckpointPlan::with_budget(97, 7).actions_cached();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_ne!(*first, *other);
    }

    #[test]
    fn binom_saturates_instead_of_overflowing() {
        assert_eq!(binom(6, 2), 15);
        assert_eq!(binom(5, 0), 1);
        assert_eq!(binom(3, 5), 0);
        assert_eq!(binom(10_000, 5_000), usize::MAX);
    }
}
