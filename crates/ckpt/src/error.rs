//! Checkpointing errors.

use std::fmt;

/// Why a checkpointed sweep failed.
///
/// Schedule construction itself never fails (budgets are clamped into
/// range); errors come from the snapshot store — an unwritable spill
/// directory, a truncated snapshot file — or from a driver invariant
/// violation, which indicates a bug in the schedule, not in the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The snapshot store could not save or restore a state.
    Store(String),
    /// A serialized snapshot did not round-trip (truncated file, wrong
    /// extents, version skew).
    Corrupt(String),
    /// The action stream referenced a snapshot that is not live — a
    /// schedule-construction bug, never a caller error.
    Protocol(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Store(m) => write!(f, "snapshot store: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            CkptError::Protocol(m) => write!(f, "checkpoint protocol violation: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}
