//! Schedule compilation and execution.
//!
//! [`compile_schedule`] turns an [`Adjoint`] (or any list of loop nests
//! sharing counters) into a [`Schedule`]: the nests are partitioned into
//! fusion groups by the dependence graph, each group is compiled into an
//! executable [`Plan`], and its iteration space is cut into cache-blocked
//! [`Tile`]s. [`run_schedule`] then executes each group as a *single*
//! parallel region — core and boundary nests interleaved tile by tile —
//! paying one barrier per group instead of one per nest.

use crate::error::SchedError;
use crate::fuse::fuse_groups;
use crate::graph::{dependence_graph, DepGraph};
use perforad_core::{Adjoint, BoundaryStrategy, LoopNest};
use perforad_exec::kernel::PlanOptions;
use perforad_exec::{
    compile_nests_opts, tile_nest, Binding, ExecStats, Lowering, Plan, ThreadPool, Tile,
    TileRunner, Workspace,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How tiles are assigned to pool workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TilePolicy {
    /// Tiles are pre-assigned to workers by longest-processing-time
    /// balancing of their point counts (OpenMP `schedule(static)` in
    /// spirit: zero runtime coordination).
    Static,
    /// Workers pull tiles from a shared atomic counter as they finish
    /// (work-stealing-style; OpenMP `schedule(dynamic)`), absorbing the
    /// irregular boundary tiles without idling.
    #[default]
    Dynamic,
}

/// Options for [`compile_schedule`].
#[derive(Clone, Debug)]
pub struct SchedOptions {
    /// Per-dimension tile edges. `None` picks a rank-based default; a
    /// single element broadcasts to every dimension.
    pub tile: Option<Vec<i64>>,
    /// Tile-to-worker assignment policy.
    pub policy: TilePolicy,
    /// Apply per-statement common-subexpression elimination when lowering.
    pub cse: bool,
    /// Statement lowering tiles run with: the per-point interpreter
    /// (default, reference) or the vectorized register-IR row executor.
    pub lowering: Lowering,
    /// Merge conflict-free nests into shared parallel regions (default).
    /// Off, every nest becomes its own group — one barrier per nest, the
    /// unfused baseline the paper's figures compare against and one axis
    /// of the autotuner's search space.
    pub fuse: bool,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            tile: None,
            policy: TilePolicy::default(),
            cse: false,
            lowering: Lowering::default(),
            fuse: true,
        }
    }
}

impl SchedOptions {
    pub fn with_tile(mut self, tile: &[i64]) -> Self {
        self.tile = Some(tile.to_vec());
        self
    }

    pub fn with_policy(mut self, policy: TilePolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_cse(mut self, cse: bool) -> Self {
        self.cse = cse;
        self
    }

    pub fn with_lowering(mut self, lowering: Lowering) -> Self {
        self.lowering = lowering;
        self
    }

    /// Shorthand for selecting the vectorized row executor.
    pub fn with_rows(self) -> Self {
        self.with_lowering(Lowering::Rows)
    }

    /// Shorthand for selecting JIT-compiled native tiles (prepare the
    /// compiled schedule with `perforad_jit::prepare_schedule`; without
    /// a registered native module, execution falls back to rows).
    pub fn with_jit(self) -> Self {
        self.with_lowering(Lowering::Jit)
    }

    pub fn with_fuse(mut self, fuse: bool) -> Self {
        self.fuse = fuse;
        self
    }

    /// Options matching a tuner-selected configuration (the run-time half
    /// — serial vs pool — lives in [`crate::run_tuned`]).
    pub fn from_tuned(cfg: &crate::TunedConfig) -> Self {
        SchedOptions {
            // An empty tile vector means "rank default".
            tile: (!cfg.tile.is_empty()).then(|| cfg.tile.clone()),
            policy: cfg.policy,
            cse: cfg.cse,
            lowering: cfg.lowering,
            fuse: cfg.fuse,
        }
    }
}

/// Default tile edges per rank: long innermost blocks (the contiguous,
/// streamed dimension), small outer blocks, sized so a tile's working set
/// (a handful of f64 arrays) stays within a per-core L2.
pub fn default_tile(rank: usize) -> Vec<i64> {
    match rank {
        1 => vec![1 << 14],
        2 => vec![64, 1 << 10],
        3 => vec![16, 32, 512],
        r => {
            let mut t = vec![8; r];
            t[r - 1] = 256;
            t
        }
    }
}

/// One fusion group: a set of mutually independent nests compiled into
/// their own [`Plan`], executed as a single parallel region.
///
/// Each group carries a separate plan so that cross-group producer →
/// consumer flows (nest B reads what nest A wrote) compile: within one
/// plan the executor forbids write/read aliasing — precisely the
/// single-region race condition — while across groups the barrier makes
/// the flow safe.
#[derive(Clone, Debug)]
pub struct FusedGroup {
    /// Indices into the source nest list, aligned with `plan.nests`.
    pub nests: Vec<usize>,
    /// The group's compiled nests.
    pub plan: Plan,
    /// The group's tiles (`Tile::nest` indexes `plan.nests`), sorted by
    /// descending point count (LPT order).
    pub tiles: Vec<Tile>,
}

impl FusedGroup {
    /// Iteration points across the group.
    pub fn points(&self) -> u64 {
        self.tiles.iter().map(Tile::points).sum()
    }
}

/// A fused, tiled, dependence-checked execution schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Fusion groups in execution order; a barrier separates consecutive
    /// groups, no synchronisation happens within one.
    pub groups: Vec<FusedGroup>,
    /// The dependence graph the grouping was derived from.
    pub graph: DepGraph,
    /// Tile edges used, aligned with the nest rank.
    pub tile: Vec<i64>,
    /// Worker-assignment policy.
    pub policy: TilePolicy,
    /// Statement lowering tiles run with.
    pub lowering: Lowering,
    /// Whether conflict-free nests were merged into shared groups.
    pub fused: bool,
    /// Whether per-statement CSE was applied when lowering.
    pub cse: bool,
    /// The source nests the schedule was compiled from, in original order
    /// — kept so the autotuner can recompile the same work under other
    /// configurations (`perforad-tune`'s `Schedule::autotune`). Behind an
    /// `Arc` so cloning a schedule does not deep-copy the nest IR.
    pub source: std::sync::Arc<[LoopNest]>,
    /// Whether out-of-range reads resolve to zero padding (the adjoint's
    /// `BoundaryStrategy::Padded`), needed alongside `source` to recompile.
    pub padded: bool,
}

impl Schedule {
    /// Number of barrier-separated parallel regions.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Size of the largest fusion group (how many nests share one region).
    pub fn max_fused(&self) -> usize {
        self.groups.iter().map(|g| g.nests.len()).max().unwrap_or(0)
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        self.groups.iter().map(|g| g.tiles.len()).sum()
    }

    /// True when every scheduled nest writes only at its centre point.
    pub fn gather_only(&self) -> bool {
        self.groups.iter().all(|g| g.plan.gather_only)
    }

    /// Total iteration points over all groups.
    pub fn points(&self) -> u64 {
        self.groups.iter().map(|g| g.plan.points()).sum()
    }

    /// One-line summary for logs and bench output.
    pub fn describe(&self) -> String {
        format!(
            "{} nests -> {} group(s), {} tiles (tile {:?}, {:?}, {:?}, {} conflict edges)",
            self.graph.len(),
            self.group_count(),
            self.tile_count(),
            self.tile,
            self.policy,
            self.lowering,
            self.graph.edge_count(),
        )
    }
}

fn resolve_tile(opts: &SchedOptions, rank: usize) -> Result<Vec<i64>, SchedError> {
    let tile = match &opts.tile {
        None => default_tile(rank),
        Some(t) if t.len() == 1 => vec![t[0]; rank],
        Some(t) if t.len() == rank => t.clone(),
        Some(t) => {
            return Err(SchedError::BadTile(format!(
                "{} tile edges for a rank-{rank} nest",
                t.len()
            )))
        }
    };
    if let Some(&bad) = tile.iter().find(|&&t| t < 1) {
        return Err(SchedError::BadTile(format!("non-positive tile edge {bad}")));
    }
    Ok(tile)
}

/// Compile a list of loop nests (sharing counters, as produced by one
/// adjoint transformation) into a fused, tiled schedule.
pub fn compile_schedule_nests(
    nests: &[LoopNest],
    ws: &Workspace,
    binding: &Binding,
    padded: bool,
    opts: &SchedOptions,
) -> Result<Schedule, SchedError> {
    if nests.is_empty() {
        return Err(SchedError::BadInput("no nests to schedule".into()));
    }
    if let Some(bad) = nests.iter().find(|n| n.rank() != nests[0].rank()) {
        return Err(SchedError::BadInput(format!(
            "mixed ranks in one nest list ({} vs {})",
            nests[0].rank(),
            bad.rank()
        )));
    }
    let _span = perforad_obs::span!("sched.compile", "sched", "nests" => nests.len() as u64);
    let graph = dependence_graph(nests, &binding.sizes)?;
    let tile = resolve_tile(opts, nests[0].rank())?;
    let plan_opts = PlanOptions {
        padded,
        cse: opts.cse,
    };
    let members = if opts.fuse {
        fuse_groups(&graph)
    } else {
        // Unfused: one group (one barrier) per nest, source order — the
        // original order is a valid sequential order of the nest list.
        (0..nests.len()).map(|i| vec![i]).collect()
    };
    let groups = members
        .into_iter()
        .map(|members| {
            let group_nests: Vec<LoopNest> = members.iter().map(|&m| nests[m].clone()).collect();
            let plan = compile_nests_opts(&group_nests, ws, binding, plan_opts)?;
            let mut tiles: Vec<Tile> = (0..plan.nests.len())
                .flat_map(|local| tile_nest(&plan, local, &tile))
                .collect();
            // LPT order: hand the big core tiles out first so stragglers
            // are the small boundary tiles.
            tiles.sort_by_key(|t| std::cmp::Reverse(t.points()));
            let group = FusedGroup {
                nests: members,
                plan,
                tiles,
            };
            debug_assert_eq!(
                group.points(),
                group.plan.points(),
                "tiles must cover the group's iteration space exactly"
            );
            Ok(group)
        })
        .collect::<Result<Vec<_>, SchedError>>()?;
    if perforad_obs::enabled() {
        // Fusion decisions, countable: how many regions the dependence
        // graph allowed, and how many edges forbade merging further.
        perforad_obs::counter("sched.compiles").inc();
        perforad_obs::counter("sched.groups").add(groups.len() as u64);
        perforad_obs::counter("sched.fused_nests").add(nests.len() as u64);
        perforad_obs::counter("sched.conflict_edges").add(graph.edge_count() as u64);
    }
    Ok(Schedule {
        groups,
        graph,
        tile,
        policy: opts.policy,
        lowering: opts.lowering,
        fused: opts.fuse,
        cse: opts.cse,
        source: nests.into(),
        padded,
    })
}

/// Compile a full adjoint into a fused, tiled schedule, checking the
/// minimum-extent requirement of the disjoint decomposition (as
/// [`perforad_exec::compile_adjoint`] does) and honouring the padded
/// boundary strategy.
pub fn compile_schedule(
    adj: &Adjoint,
    ws: &Workspace,
    binding: &Binding,
    opts: &SchedOptions,
) -> Result<Schedule, SchedError> {
    perforad_exec::check_adjoint_extents(adj, binding)?;
    let padded = adj.strategy == BoundaryStrategy::Padded;
    compile_schedule_nests(&adj.nests, ws, binding, padded, opts)
}

/// Execute a schedule on a worker pool: each fusion group runs as one
/// parallel region (tiles of all member nests interleaved), groups
/// separated by the pool's region barrier. Requires a gather-only plan —
/// the race-freedom argument is per-point centre writes plus the
/// dependence check.
pub fn run_schedule(
    schedule: &Schedule,
    ws: &mut Workspace,
    pool: &ThreadPool,
) -> Result<ExecStats, SchedError> {
    if !schedule.gather_only() {
        return Err(SchedError::ScatterPlan);
    }
    for (gi, group) in schedule.groups.iter().enumerate() {
        let _group_span = perforad_obs::span!(
            "exec.group", "exec", "group" => gi as u64, "tiles" => group.tiles.len() as u64
        );
        let runner = TileRunner::new(&group.plan, ws)?.with_lowering(schedule.lowering);
        match schedule.policy {
            TilePolicy::Dynamic => {
                let counter = AtomicUsize::new(0);
                pool.run(&|_tid| {
                    let mut scratch = runner.scratch();
                    loop {
                        let k = counter.fetch_add(1, Ordering::Relaxed);
                        if k >= group.tiles.len() {
                            break;
                        }
                        let tile = &group.tiles[k];
                        let _tile_span = perforad_obs::span!(
                            "exec.tile", "exec",
                            "nest" => tile.nest as u64, "points" => tile.points()
                        );
                        // SAFETY: tiles within a group have disjoint write
                        // sets (gather-only plan + per-nest disjoint boxes +
                        // dependence-checked cross-nest write regions), and
                        // the atomic counter hands each tile to one worker.
                        unsafe { runner.run_tile(tile, &mut scratch) };
                    }
                });
            }
            TilePolicy::Static => {
                let assignment = lpt_assign(&group.tiles, pool.size());
                pool.run(&|tid| {
                    let mut scratch = runner.scratch();
                    for &k in &assignment[tid] {
                        let tile = &group.tiles[k];
                        let _tile_span = perforad_obs::span!(
                            "exec.tile", "exec",
                            "nest" => tile.nest as u64, "points" => tile.points()
                        );
                        // SAFETY: as above; the LPT bins partition the tile
                        // list, so no tile runs on two workers.
                        unsafe { runner.run_tile(tile, &mut scratch) };
                    }
                });
            }
        }
    }
    Ok(ExecStats {
        points: schedule.points(),
    })
}

/// Run serially (tile order, no pool) — the determinism reference.
pub fn run_schedule_serial(
    schedule: &Schedule,
    ws: &mut Workspace,
) -> Result<ExecStats, SchedError> {
    if !schedule.gather_only() {
        return Err(SchedError::ScatterPlan);
    }
    for (gi, group) in schedule.groups.iter().enumerate() {
        let _group_span = perforad_obs::span!(
            "exec.group", "exec", "group" => gi as u64, "tiles" => group.tiles.len() as u64
        );
        let runner = TileRunner::new(&group.plan, ws)?.with_lowering(schedule.lowering);
        let mut scratch = runner.scratch();
        for t in &group.tiles {
            let _tile_span = perforad_obs::span!(
                "exec.tile", "exec", "nest" => t.nest as u64, "points" => t.points()
            );
            // SAFETY: single-threaded execution cannot race.
            unsafe { runner.run_tile(t, &mut scratch) };
        }
    }
    Ok(ExecStats {
        points: schedule.points(),
    })
}

/// Longest-processing-time assignment of tiles to `workers` bins (tiles
/// are already sorted descending by points).
fn lpt_assign(tiles: &[Tile], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for (k, t) in tiles.iter().enumerate() {
        let w = (0..workers).min_by_key(|&w| load[w]).unwrap();
        bins[w].push(k);
        load[w] += t.points().max(1);
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::{make_loop_nest, ActivityMap, AdjointOptions};
    use perforad_exec::{compile_adjoint, run_serial, Grid};
    use perforad_symbolic::{ix, Array, Idx, Symbol};

    fn paper_nest() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c) = (Array::new("u"), Array::new("c"));
        make_loop_nest(
            &Array::new("r").at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap()
    }

    fn setup(n: usize) -> (Workspace, Binding) {
        let mut ws = Workspace::new();
        ws.insert(
            "u",
            Grid::from_fn(&[n + 1], |ix| (ix[0] as f64).sin() + 1.5),
        );
        ws.insert("c", Grid::from_fn(&[n + 1], |ix| 0.5 + 0.1 * ix[0] as f64));
        ws.insert("r", Grid::zeros(&[n + 1]));
        ws.insert("u_b", Grid::zeros(&[n + 1]));
        ws.insert("r_b", Grid::from_fn(&[n + 1], |ix| (ix[0] as f64).cos()));
        (ws, Binding::new().size("n", n as i64))
    }

    #[test]
    fn adjoint_fuses_into_one_group() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let (ws, bind) = setup(64);
        let s = compile_schedule(&adj, &ws, &bind, &SchedOptions::default()).unwrap();
        assert_eq!(s.group_count(), 1, "{}", s.describe());
        assert_eq!(s.max_fused(), 5);
        assert!(s.gather_only());
    }

    #[test]
    fn fused_parallel_matches_unfused_serial_bitwise() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();

        // Unfused serial reference through the existing executor.
        let (mut ws_ref, bind) = setup(257);
        let plan = compile_adjoint(&adj, &ws_ref, &bind).unwrap();
        run_serial(&plan, &mut ws_ref).unwrap();

        for policy in [TilePolicy::Dynamic, TilePolicy::Static] {
            let (mut ws, _) = setup(257);
            let opts = SchedOptions::default().with_tile(&[16]).with_policy(policy);
            let s = compile_schedule(&adj, &ws, &bind, &opts).unwrap();
            let pool = ThreadPool::new(4);
            run_schedule(&s, &mut ws, &pool).unwrap();
            assert_eq!(
                ws.grid("u_b").max_abs_diff(ws_ref.grid("u_b")),
                0.0,
                "policy {policy:?}"
            );
        }
    }

    #[test]
    fn rows_lowering_matches_interpreter_bitwise_through_tiles() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let (mut ws_ref, bind) = setup(201);
        let plan = compile_adjoint(&adj, &ws_ref, &bind).unwrap();
        run_serial(&plan, &mut ws_ref).unwrap();

        for policy in [TilePolicy::Dynamic, TilePolicy::Static] {
            let (mut ws, _) = setup(201);
            let opts = SchedOptions::default()
                .with_tile(&[16])
                .with_policy(policy)
                .with_rows();
            let s = compile_schedule(&adj, &ws, &bind, &opts).unwrap();
            let pool = ThreadPool::new(4);
            run_schedule(&s, &mut ws, &pool).unwrap();
            assert_eq!(
                ws.grid("u_b").max_abs_diff(ws_ref.grid("u_b")),
                0.0,
                "rows lowering, policy {policy:?}"
            );
        }
        // Serial tile order agrees too.
        let (mut ws, _) = setup(201);
        let s = compile_schedule(&adj, &ws, &bind, &SchedOptions::default().with_rows()).unwrap();
        run_schedule_serial(&s, &mut ws).unwrap();
        assert_eq!(ws.grid("u_b").max_abs_diff(ws_ref.grid("u_b")), 0.0);
    }

    #[test]
    fn unfused_schedule_matches_fused_bitwise() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let (mut ws_f, bind) = setup(129);
        let fused = compile_schedule(&adj, &ws_f, &bind, &SchedOptions::default()).unwrap();
        assert!(fused.fused);
        assert_eq!(fused.source.len(), 5);
        let pool = ThreadPool::new(3);
        run_schedule(&fused, &mut ws_f, &pool).unwrap();

        let (mut ws_u, _) = setup(129);
        let opts = SchedOptions::default().with_fuse(false);
        let unfused = compile_schedule(&adj, &ws_u, &bind, &opts).unwrap();
        assert_eq!(unfused.group_count(), 5, "{}", unfused.describe());
        assert!(!unfused.fused);
        run_schedule(&unfused, &mut ws_u, &pool).unwrap();
        assert_eq!(ws_f.grid("u_b").max_abs_diff(ws_u.grid("u_b")), 0.0);
    }

    #[test]
    fn overlapping_writes_never_fuse() {
        // Negative dependence test: two gather nests writing the same array
        // over overlapping boxes must land in different groups.
        let i = Symbol::new("i");
        let u = Array::new("u");
        let mk = |lo: i64, hi: i64| {
            make_loop_nest(
                &Array::new("w").at(ix![&i]),
                u.at(ix![&i]),
                vec![i.clone()],
                vec![(Idx::constant(lo), Idx::constant(hi))],
            )
            .unwrap()
        };
        let nests = [mk(1, 20), mk(10, 30)];
        let ws = Workspace::new()
            .with("u", Grid::zeros(&[40]))
            .with("w", Grid::zeros(&[40]));
        let bind = Binding::new();
        let s =
            compile_schedule_nests(&nests, &ws, &bind, false, &SchedOptions::default()).unwrap();
        assert_eq!(s.group_count(), 2, "{}", s.describe());
        assert!(s.graph.conflicts(0, 1));

        // Disjoint variants fuse.
        let nests = [mk(1, 20), mk(21, 30)];
        let s =
            compile_schedule_nests(&nests, &ws, &bind, false, &SchedOptions::default()).unwrap();
        assert_eq!(s.group_count(), 1);
    }

    #[test]
    fn barrier_between_groups_orders_raw_dependences() {
        // Nest 1 reads what nest 0 writes: a fused run must still see the
        // serial result because the groups execute in order.
        let i = Symbol::new("i");
        let (u, w) = (Array::new("u"), Array::new("w"));
        let first = make_loop_nest(
            &w.at(ix![&i]),
            2.0 * u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::constant(30))],
        )
        .unwrap();
        let second = make_loop_nest(
            &Array::new("v").at(ix![&i]),
            w.at(ix![&i - 1]) + w.at(ix![&i + 1]),
            vec![i.clone()],
            vec![(Idx::constant(2), Idx::constant(29))],
        )
        .unwrap();
        let nests = [first.clone(), second.clone()];
        let build = || {
            Workspace::new()
                .with("u", Grid::from_fn(&[32], |ix| ix[0] as f64))
                .with("w", Grid::zeros(&[32]))
                .with("v", Grid::zeros(&[32]))
        };
        let bind = Binding::new();
        let mut ws = build();
        let opts = SchedOptions::default().with_tile(&[4]);
        let s = compile_schedule_nests(&nests, &ws, &bind, false, &opts).unwrap();
        assert_eq!(s.group_count(), 2);
        let pool = ThreadPool::new(4);
        run_schedule(&s, &mut ws, &pool).unwrap();

        let mut ws_ref = build();
        let p1 = perforad_exec::compile_nest(&first, &ws_ref, &bind).unwrap();
        run_serial(&p1, &mut ws_ref).unwrap();
        let p2 = perforad_exec::compile_nest(&second, &ws_ref, &bind).unwrap();
        run_serial(&p2, &mut ws_ref).unwrap();
        assert_eq!(ws.grid("v").max_abs_diff(ws_ref.grid("v")), 0.0);
    }

    #[test]
    fn disjoint_producer_consumer_schedules_into_two_groups() {
        // Nest 0 writes w[1..10]; nest 1 reads w[20..30] (disjoint) into v.
        // The executor cannot host both in one plan (AliasedWrite), so the
        // scheduler must split them rather than fail compilation.
        let i = Symbol::new("i");
        let (u, w) = (Array::new("u"), Array::new("w"));
        let producer = make_loop_nest(
            &w.at(ix![&i]),
            3.0 * u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::constant(10))],
        )
        .unwrap();
        let consumer = make_loop_nest(
            &Array::new("v").at(ix![&i]),
            w.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(20), Idx::constant(30))],
        )
        .unwrap();
        let mut ws = Workspace::new()
            .with("u", Grid::from_fn(&[40], |ix| ix[0] as f64))
            .with("w", Grid::full(&[40], 7.0))
            .with("v", Grid::zeros(&[40]));
        let bind = Binding::new();
        let s = compile_schedule_nests(
            &[producer, consumer],
            &ws,
            &bind,
            false,
            &SchedOptions::default(),
        )
        .expect("disjoint producer/consumer must schedule, not fail");
        assert_eq!(s.group_count(), 2, "{}", s.describe());
        let pool = ThreadPool::new(2);
        run_schedule(&s, &mut ws, &pool).unwrap();
        assert_eq!(ws.grid("w").get(&[5]), 15.0);
        assert_eq!(ws.grid("v").get(&[25]), 7.0);
    }

    #[test]
    fn scatter_plans_are_rejected() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let sc = paper_nest().scatter_adjoint(&act).unwrap();
        let (mut ws, bind) = setup(32);
        let s = compile_schedule_nests(
            std::slice::from_ref(&sc),
            &ws,
            &bind,
            false,
            &SchedOptions::default(),
        )
        .unwrap();
        let pool = ThreadPool::new(2);
        assert_eq!(
            run_schedule(&s, &mut ws, &pool).unwrap_err(),
            SchedError::ScatterPlan
        );
    }

    #[test]
    fn extent_check_matches_compile_adjoint() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let (ws, _) = setup(10);
        let err = compile_schedule(
            &adj,
            &ws,
            &Binding::new().size("n", 2),
            &SchedOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SchedError::Exec(perforad_exec::ExecError::ExtentTooSmall { .. })
        ));
    }

    #[test]
    fn empty_and_mixed_rank_nest_lists_are_errors_not_panics() {
        let ws = Workspace::new()
            .with("u", Grid::zeros(&[8]))
            .with("w", Grid::zeros(&[8]));
        let bind = Binding::new();
        let err =
            compile_schedule_nests(&[], &ws, &bind, false, &SchedOptions::default()).unwrap_err();
        assert!(matches!(err, SchedError::BadInput(_)), "{err}");

        let i = Symbol::new("i");
        let j = Symbol::new("j");
        let u = Array::new("u");
        let one_d = make_loop_nest(
            &Array::new("w").at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::constant(5))],
        )
        .unwrap();
        let two_d = make_loop_nest(
            &Array::new("v").at(ix![&i, &j]),
            Array::new("p").at(ix![&i, &j]),
            vec![i.clone(), j.clone()],
            vec![
                (Idx::constant(1), Idx::constant(5)),
                (Idx::constant(1), Idx::constant(5)),
            ],
        )
        .unwrap();
        let err =
            compile_schedule_nests(&[one_d, two_d], &ws, &bind, false, &SchedOptions::default())
                .unwrap_err();
        assert!(matches!(err, SchedError::BadInput(_)), "{err}");
    }

    #[test]
    fn bad_tiles_are_rejected() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_nest()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap();
        let (ws, bind) = setup(32);
        for bad in [vec![0i64], vec![4, 4]] {
            let opts = SchedOptions::default().with_tile(&bad);
            assert!(matches!(
                compile_schedule(&adj, &ws, &bind, &opts),
                Err(SchedError::BadTile(_))
            ));
        }
    }

    #[test]
    fn lpt_balances_loads() {
        let tiles: Vec<Tile> = (0..10)
            .map(|k| Tile {
                nest: 0,
                lo: vec![0],
                hi: vec![9 - (k % 3)],
            })
            .collect();
        let bins = lpt_assign(&tiles, 3);
        assert_eq!(bins.iter().map(Vec::len).sum::<usize>(), 10);
        let loads: Vec<u64> = bins
            .iter()
            .map(|b| b.iter().map(|&k| tiles[k].points()).sum())
            .collect();
        let (lo, hi) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        assert!(hi - lo <= 10, "loads {loads:?}");
    }
}
