//! Scheduler errors.

use perforad_core::CoreError;
use perforad_exec::ExecError;
use std::fmt;

/// Why a schedule could not be compiled or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// Lowering to the execution engine failed.
    Exec(ExecError),
    /// Extracting access metadata from the IR failed.
    Core(CoreError),
    /// A bound symbol had no integer binding when resolving footprints.
    UnboundSize(String),
    /// Invalid tile specification (wrong rank, non-positive edge).
    BadTile(String),
    /// The nest list cannot be scheduled as given (empty, or nests of
    /// different ranks in one list).
    BadInput(String),
    /// `run_schedule` requires a gather-only plan; scatter nests would race
    /// without atomics (use the exec scatter-atomic path for those).
    ScatterPlan,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Exec(e) => write!(f, "execution engine: {e}"),
            SchedError::Core(e) => write!(f, "core IR: {e}"),
            SchedError::UnboundSize(s) => {
                write!(f, "no integer binding for size symbol `{s}`")
            }
            SchedError::BadTile(s) => write!(f, "bad tile specification: {s}"),
            SchedError::BadInput(s) => write!(f, "unschedulable nest list: {s}"),
            SchedError::ScatterPlan => write!(
                f,
                "fused schedules require gather-only nests; scatter plans need atomics"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<ExecError> for SchedError {
    fn from(e: ExecError) -> Self {
        SchedError::Exec(e)
    }
}

impl From<CoreError> for SchedError {
    fn from(e: CoreError) -> Self {
        SchedError::Core(e)
    }
}
