//! Tuner-selected schedule configurations.
//!
//! A [`TunedConfig`] is the pure-data description of one point in the
//! adjoint schedule space — parallel strategy × lowering × tile policy ×
//! tile edges × fusion on/off — as produced by the `perforad-tune`
//! autotuner and consumed by [`SchedOptions::from_tuned`] (compile-time
//! half) and [`run_tuned`] (run-time half). It lives here rather than in
//! the tuner crate so the scheduler can accept it without a dependency
//! cycle.

use crate::error::SchedError;
use crate::schedule::{run_schedule, run_schedule_serial, SchedOptions, Schedule, TilePolicy};
use perforad_exec::{ExecStats, Lowering, ThreadPool, Workspace};

/// Run-time half of a tuned configuration: how the compiled schedule is
/// driven (the compile-time half lives in [`SchedOptions`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TunedStrategy {
    /// Single thread, tile order — wins on problems too small to amortise
    /// a parallel region.
    Serial,
    /// Tiles distributed over a worker pool.
    #[default]
    Parallel,
}

/// One point of the adjoint schedule space, as selected by the tuner.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedConfig {
    /// Serial or pool-parallel execution.
    pub strategy: TunedStrategy,
    /// Per-point interpreter or vectorized register-IR rows.
    pub lowering: Lowering,
    /// Static (LPT) or dynamic (shared-counter) tile assignment.
    pub policy: TilePolicy,
    /// Tile edges, one per nest dimension.
    pub tile: Vec<i64>,
    /// Whether conflict-free nests share parallel regions.
    pub fuse: bool,
    /// Apply per-statement common-subexpression elimination when
    /// compiling. Not searched by the tuner (it is a plan-level knob set
    /// by the caller); carried so retuning preserves it.
    pub cse: bool,
    /// Worker count the configuration was tuned for (1 when serial).
    pub threads: usize,
    /// Snapshot budget for checkpointed time loops driving this
    /// schedule: `Some(b)` means "keep at most `b` trajectory snapshots
    /// live, recompute the rest" — the winner of the tuner's
    /// snapshot-count axis when a time loop was described
    /// (`TuneOptions::with_time_loop`), `None` for plain single-sweep
    /// tunings. Like `threads`, it is advice to the *driver* of the
    /// schedule (the checkpointed time loop), not a compile-time knob:
    /// [`SchedOptions::from_tuned`] ignores it.
    pub checkpoint: Option<usize>,
}

impl Default for TunedConfig {
    fn default() -> Self {
        TunedConfig {
            strategy: TunedStrategy::Parallel,
            lowering: Lowering::default(),
            policy: TilePolicy::default(),
            tile: Vec::new(),
            fuse: true,
            cse: false,
            threads: 1,
            checkpoint: None,
        }
    }
}

impl TunedConfig {
    /// Compact one-line description for logs and bench output.
    pub fn describe(&self) -> String {
        let ckpt = match self.checkpoint {
            Some(b) => format!(" ckpt {b}"),
            None => String::new(),
        };
        format!(
            "{:?}/{:?}/{:?} tile {:?} fuse {} cse {}{ckpt} ({} threads)",
            self.strategy, self.lowering, self.policy, self.tile, self.fuse, self.cse, self.threads
        )
    }

    /// The scheduler options matching this configuration
    /// (alias of [`SchedOptions::from_tuned`]).
    pub fn sched_options(&self) -> SchedOptions {
        SchedOptions::from_tuned(self)
    }
}

/// Execute a schedule the way its tuned configuration asks: serially for
/// [`TunedStrategy::Serial`], on the pool otherwise. The schedule itself
/// must already have been compiled with [`SchedOptions::from_tuned`] for
/// the tile/lowering/policy/fusion half of `cfg` to be in effect.
pub fn run_tuned(
    schedule: &Schedule,
    cfg: &TunedConfig,
    ws: &mut Workspace,
    pool: &ThreadPool,
) -> Result<ExecStats, SchedError> {
    match cfg.strategy {
        TunedStrategy::Serial => run_schedule_serial(schedule, ws),
        TunedStrategy::Parallel => run_schedule(schedule, ws, pool),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tuned_maps_every_compile_time_knob() {
        let cfg = TunedConfig {
            strategy: TunedStrategy::Serial,
            lowering: Lowering::Rows,
            policy: TilePolicy::Static,
            tile: vec![8, 128],
            fuse: false,
            cse: true,
            threads: 4,
            checkpoint: Some(16),
        };
        let opts = SchedOptions::from_tuned(&cfg);
        assert_eq!(opts.tile.as_deref(), Some(&[8, 128][..]));
        assert_eq!(opts.policy, TilePolicy::Static);
        assert_eq!(opts.lowering, Lowering::Rows);
        assert!(!opts.fuse);
        assert!(opts.cse, "CSE must survive the from_tuned mapping");
        assert_eq!(cfg.sched_options().tile, opts.tile);
    }

    #[test]
    fn default_config_is_fused_parallel_interpreter() {
        let cfg = TunedConfig::default();
        assert_eq!(cfg.strategy, TunedStrategy::Parallel);
        assert!(cfg.fuse);
        assert_eq!(cfg.checkpoint, None, "no checkpointing unless tuned for");
        // The checkpoint budget is driver advice, not a compile-time knob.
        assert!(cfg.describe().contains("fuse true"));
        assert!(!cfg.describe().contains("ckpt"));
        let with_ckpt = TunedConfig {
            checkpoint: Some(8),
            ..cfg.clone()
        };
        assert!(with_ckpt.describe().contains("ckpt 8"));
        let opts = SchedOptions::from_tuned(&cfg);
        // An empty tile vector means "pick the rank default".
        assert_eq!(opts.tile, None);
    }
}
