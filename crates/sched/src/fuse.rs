//! Loop-nest fusion: partition a nest list into barrier-separated groups
//! whose members are pairwise independent.
//!
//! The classic greedy "earliest legal partition" scheme: scanning nests in
//! program order, each nest joins the first group after the *last* group
//! containing a conflicting predecessor. Every group member pair is
//! conflict-free (a later group never holds a nest conflicting with an
//! earlier one, by construction), so one group = one race-free parallel
//! region; the barrier count drops from `#nests` to `#groups` — for a
//! disjoint adjoint decomposition (no conflicts at all), from `(2n−1)^d`
//! to exactly one.

use crate::graph::DepGraph;

/// Group the nests `0..graph.len()` into fusion groups. Groups execute in
/// order with a barrier between them; members of one group may run
/// concurrently.
pub fn fuse_groups(graph: &DepGraph) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for j in 0..graph.len() {
        // Last group containing a nest that conflicts with `j`.
        let last_conflict = groups
            .iter()
            .rposition(|g| g.iter().any(|&k| graph.conflicts(k, j)));
        let target = last_conflict.map_or(0, |l| l + 1);
        if target == groups.len() {
            groups.push(vec![j]);
        } else {
            groups[target].push(j);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dependence_graph;
    use perforad_core::{make_loop_nest, LoopNest};
    use perforad_symbolic::{ix, Array, Idx, Symbol};
    use std::collections::BTreeMap;

    fn writer(out: &str, lo: i64, hi: i64) -> LoopNest {
        let i = Symbol::new("i");
        let u = Array::new("u");
        make_loop_nest(
            &Array::new(out).at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(lo), Idx::constant(hi))],
        )
        .unwrap()
    }

    #[test]
    fn independent_nests_fuse_into_one_group() {
        let nests = [writer("w", 0, 9), writer("w", 10, 19), writer("v", 0, 19)];
        let g = dependence_graph(&nests, &BTreeMap::new()).unwrap();
        let groups = fuse_groups(&g);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn conflicting_nests_split_at_a_barrier() {
        let nests = [writer("w", 0, 10), writer("w", 5, 15)];
        let g = dependence_graph(&nests, &BTreeMap::new()).unwrap();
        let groups = fuse_groups(&g);
        assert_eq!(groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn later_nest_rejoins_after_the_conflicting_group() {
        // 0 and 1 conflict; 2 is independent of both, so it joins the
        // first group instead of opening a third.
        let nests = [writer("w", 0, 10), writer("w", 5, 15), writer("v", 0, 9)];
        let g = dependence_graph(&nests, &BTreeMap::new()).unwrap();
        let groups = fuse_groups(&g);
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn chain_of_conflicts_stays_ordered() {
        let nests = [writer("w", 0, 10), writer("w", 5, 15), writer("w", 12, 20)];
        let g = dependence_graph(&nests, &BTreeMap::new()).unwrap();
        let groups = fuse_groups(&g);
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
        // Every pair within a group must be conflict-free.
        for grp in &groups {
            for (x, &a) in grp.iter().enumerate() {
                for &b in &grp[x + 1..] {
                    assert!(!g.conflicts(a, b));
                }
            }
        }
    }
}
