//! Dependence analysis over loop nests.
//!
//! Each nest's read/write footprints come from the disjoint-region
//! metadata in `perforad_core::regions` ([`access_boxes`]): the nest bounds
//! translated by every access offset, per array. With integer size
//! bindings the symbolic boxes resolve to concrete integer boxes, and two
//! nests *conflict* when
//!
//! * both write the same array over overlapping boxes (a race), or
//! * one writes an array the other reads, overlapping or not — the
//!   executor refuses to alias a written array with a read one inside a
//!   single plan, so such nests cannot share a parallel region anyway.
//!
//! Conflicting nests must be separated by a barrier; independent nests may
//! fuse into one parallel pass.
//!
//! Footprints over-approximate (statement guards are ignored), so the
//! graph may report a false conflict — costing a barrier, never a race.
//!
//! [`access_boxes`]: perforad_core::regions::access_boxes

use crate::error::SchedError;
use perforad_core::{access_boxes, LoopNest};
use perforad_symbolic::Symbol;
use std::collections::BTreeMap;

/// A concrete (integer) memory footprint of one nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedBox {
    /// The array touched.
    pub array: Symbol,
    /// Inclusive per-dimension lower corner.
    pub lo: Vec<i64>,
    /// Inclusive per-dimension upper corner.
    pub hi: Vec<i64>,
    /// True for a write footprint.
    pub write: bool,
}

impl ResolvedBox {
    /// True when `self` and `other` touch at least one common point.
    pub fn overlaps(&self, other: &ResolvedBox) -> bool {
        self.array == other.array
            && self
                .lo
                .iter()
                .zip(&self.hi)
                .zip(other.lo.iter().zip(&other.hi))
                .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }
}

/// Resolve a nest's symbolic footprints against integer size bindings.
/// Boxes that are empty under the bindings are dropped.
pub fn resolve_boxes(
    nest: &LoopNest,
    sizes: &BTreeMap<Symbol, i64>,
) -> Result<Vec<ResolvedBox>, SchedError> {
    let mut out = Vec::new();
    for b in access_boxes(nest)? {
        let mut lo = Vec::with_capacity(b.bounds.len());
        let mut hi = Vec::with_capacity(b.bounds.len());
        for d in &b.bounds {
            lo.push(resolve(&d.lo, sizes)?);
            hi.push(resolve(&d.hi, sizes)?);
        }
        if lo.iter().zip(&hi).any(|(l, h)| l > h) {
            continue;
        }
        out.push(ResolvedBox {
            array: b.array,
            lo,
            hi,
            write: b.write,
        });
    }
    Ok(out)
}

fn resolve(ix: &perforad_symbolic::Idx, sizes: &BTreeMap<Symbol, i64>) -> Result<i64, SchedError> {
    ix.eval(sizes).ok_or_else(|| {
        let missing = ix
            .symbols()
            .find(|s| !sizes.contains_key(s))
            .map(|s| s.name().to_string())
            .unwrap_or_default();
        SchedError::UnboundSize(missing)
    })
}

/// The pairwise conflict relation over a list of nests.
#[derive(Clone, Debug)]
pub struct DepGraph {
    n: usize,
    /// Row-major upper-triangular conflict matrix (`a < b` at `a*n + b`).
    conflict: Vec<bool>,
    /// Resolved footprints, kept for inspection and diagnostics.
    pub boxes: Vec<Vec<ResolvedBox>>,
}

impl DepGraph {
    /// Number of nests.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when nests `a` and `b` may not run concurrently.
    pub fn conflicts(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.conflict[a * self.n + b]
    }

    /// Number of conflicting pairs.
    pub fn edge_count(&self) -> usize {
        self.conflict.iter().filter(|&&c| c).count()
    }
}

/// Build the dependence graph for `nests` under the given size bindings.
pub fn dependence_graph(
    nests: &[LoopNest],
    sizes: &BTreeMap<Symbol, i64>,
) -> Result<DepGraph, SchedError> {
    let n = nests.len();
    let boxes: Vec<Vec<ResolvedBox>> = nests
        .iter()
        .map(|nest| resolve_boxes(nest, sizes))
        .collect::<Result<_, _>>()?;
    let mut conflict = vec![false; n * n];
    for a in 0..n {
        for b in a + 1..n {
            let clash = boxes[a].iter().any(|x| {
                boxes[b].iter().any(|y| {
                    if x.array != y.array {
                        return false;
                    }
                    // Write/write races only on overlapping boxes (the
                    // disjoint adjoint decomposition must fuse). A write
                    // paired with a read of the same array conflicts even
                    // when the boxes are disjoint: the executor refuses to
                    // alias a written array with a read one within a single
                    // plan, so such nests must land in separate groups.
                    match (x.write, y.write) {
                        (true, true) => x.overlaps(y),
                        (true, false) | (false, true) => true,
                        (false, false) => false,
                    }
                })
            });
            conflict[a * n + b] = clash;
        }
    }
    Ok(DepGraph { n, conflict, boxes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_core::{make_loop_nest, ActivityMap, AdjointOptions};
    use perforad_symbolic::{ix, Array, Idx};

    fn sizes(n: i64) -> BTreeMap<Symbol, i64> {
        let mut m = BTreeMap::new();
        m.insert(Symbol::new("n"), n);
        m
    }

    fn writer(lo: i64, hi: i64) -> LoopNest {
        let i = Symbol::new("i");
        let u = Array::new("u");
        make_loop_nest(
            &Array::new("w").at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(lo), Idx::constant(hi))],
        )
        .unwrap()
    }

    #[test]
    fn overlapping_writers_conflict() {
        let g = dependence_graph(&[writer(0, 10), writer(5, 15)], &sizes(32)).unwrap();
        assert!(g.conflicts(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn disjoint_writers_do_not_conflict() {
        let g = dependence_graph(&[writer(0, 10), writer(11, 20)], &sizes(32)).unwrap();
        assert!(!g.conflicts(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn read_write_overlap_conflicts() {
        // Nest 0 writes w over [0,10]; nest 1 reads w over [4,14].
        let i = Symbol::new("i");
        let w = Array::new("w");
        let reader = make_loop_nest(
            &Array::new("v").at(ix![&i]),
            w.at(ix![&i - 1]),
            vec![i.clone()],
            vec![(Idx::constant(5), Idx::constant(15))],
        )
        .unwrap();
        let g = dependence_graph(&[writer(0, 10), reader], &sizes(32)).unwrap();
        assert!(g.conflicts(0, 1));
    }

    #[test]
    fn disjoint_write_and_read_of_same_array_still_conflict() {
        // Nest 0 writes w over [0,10]; nest 1 reads w over [20,30] — no
        // overlap, but the plan compiler cannot host both in one region
        // (AliasedWrite), so the graph must split them.
        let i = Symbol::new("i");
        let w = Array::new("w");
        let reader = make_loop_nest(
            &Array::new("v").at(ix![&i]),
            w.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(20), Idx::constant(30))],
        )
        .unwrap();
        let g = dependence_graph(&[writer(0, 10), reader], &sizes(64)).unwrap();
        assert!(g.conflicts(0, 1));
    }

    #[test]
    fn shared_reads_do_not_conflict() {
        // Both nests read u over overlapping boxes but write disjoint arrays.
        let i = Symbol::new("i");
        let u = Array::new("u");
        let a = make_loop_nest(
            &Array::new("p").at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::constant(20))],
        )
        .unwrap();
        let b = make_loop_nest(
            &Array::new("q").at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::constant(20))],
        )
        .unwrap();
        let g = dependence_graph(&[a, b], &sizes(32)).unwrap();
        assert!(!g.conflicts(0, 1));
    }

    #[test]
    fn disjoint_adjoint_nests_are_conflict_free() {
        // The §3.2 adjoint: 5 nests, pairwise-disjoint write regions over
        // u_b, shared reads of c and r_b — conflict-free by construction.
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let (u, c) = (Array::new("u"), Array::new("c"));
        let nest = make_loop_nest(
            &Array::new("r").at(ix![&i]),
            c.at(ix![&i])
                * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1])),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 1)],
        )
        .unwrap();
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
        let g = dependence_graph(&adj.nests, &sizes(32)).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn unbound_size_is_reported() {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let nest = make_loop_nest(
            &Array::new("w").at(ix![&i]),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(0), Idx::sym(n))],
        )
        .unwrap();
        let err = dependence_graph(std::slice::from_ref(&nest), &BTreeMap::new()).unwrap_err();
        assert_eq!(err, SchedError::UnboundSize("n".into()));
    }
}
