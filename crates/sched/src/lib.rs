//! # perforad-sched
//!
//! The execution scheduler of **PerforAD-rs**: fuses the loop nests of an
//! adjoint stencil transformation into barrier-minimal, cache-blocked,
//! dependence-checked parallel passes.
//!
//! The adjoint transformation (Hückelheim et al., ICPP 2019) emits one
//! core nest plus `O(4^d)` boundary nests, all race-free by construction.
//! Executing them as isolated plans pays one thread-pool barrier (and one
//! sweep of cold memory) *per nest*. The follow-on OpenMP AD work
//! (Hückelheim & Hascoët, 2021) observes that scheduling — not arithmetic
//! — dominates adjoint loop performance. This crate closes that gap:
//!
//! 1. **Dependence graph** ([`graph`]): each nest's read/write footprints
//!    come from the disjoint-region metadata in `perforad_core::regions`
//!    ([`perforad_core::access_boxes`]); nests conflict when they write
//!    the same array over overlapping boxes, or when one writes an array
//!    the other reads at all.
//! 2. **Fusion** ([`fuse`]): conflict-free nests merge into groups — the
//!    disjoint decomposition's nests always form a *single* group, so the
//!    53 nests of the 3-D wave adjoint run in one parallel region.
//! 3. **Tiling** ([`schedule`]): every nest's iteration box is cut into
//!    cache-blocked [`Tile`]s (1-D/2-D/3-D, configurable edges), so the
//!    small boundary nests ride along with the core loop's tile stream.
//! 4. **Execution** ([`run_schedule`]): tiles are assigned to
//!    [`ThreadPool`] workers statically (LPT pre-assignment) or
//!    dynamically (shared counter), via the tile-granular entry points of
//!    `perforad_exec::tile`. Each tile runs either the per-point
//!    interpreter or the vectorized register-IR row executor
//!    ([`SchedOptions::with_rows`]); both are bitwise-identical.
//!
//! ```
//! use perforad_core::{make_loop_nest, ActivityMap, AdjointOptions};
//! use perforad_exec::{Binding, Grid, ThreadPool, Workspace};
//! use perforad_sched::{compile_schedule, run_schedule, SchedOptions};
//! use perforad_symbolic::{ix, Array, Idx, Symbol};
//!
//! let (i, n) = (Symbol::new("i"), Symbol::new("n"));
//! let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
//! let body = c.at(ix![&i]) * (2.0*u.at(ix![&i - 1]) - 3.0*u.at(ix![&i]) + 4.0*u.at(ix![&i + 1]));
//! let nest = make_loop_nest(&r.at(ix![&i]), body, vec![i.clone()],
//!                           vec![(Idx::constant(1), Idx::sym(n) - 1)]).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adj = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//!
//! let mut ws = Workspace::new()
//!     .with("u", Grid::from_fn(&[65], |ix| ix[0] as f64))
//!     .with("c", Grid::full(&[65], 0.5))
//!     .with("r", Grid::zeros(&[65]))
//!     .with("u_b", Grid::zeros(&[65]))
//!     .with("r_b", Grid::full(&[65], 1.0));
//! let bind = Binding::new().size("n", 64);
//!
//! let schedule = compile_schedule(&adj, &ws, &bind, &SchedOptions::default()).unwrap();
//! assert_eq!(schedule.group_count(), 1);   // all 5 nests fused, one barrier
//! assert_eq!(schedule.max_fused(), 5);
//!
//! let pool = ThreadPool::new(4);
//! run_schedule(&schedule, &mut ws, &pool).unwrap();
//! assert!(ws.grid("u_b").sum() != 0.0);
//! ```
//!
//! [`Tile`]: perforad_exec::Tile
//! [`ThreadPool`]: perforad_exec::ThreadPool

pub mod error;
pub mod fuse;
pub mod graph;
pub mod schedule;
pub mod tuned;

pub use error::SchedError;
pub use fuse::fuse_groups;
pub use graph::{dependence_graph, resolve_boxes, DepGraph, ResolvedBox};
pub use perforad_exec::Lowering;
pub use schedule::{
    compile_schedule, compile_schedule_nests, default_tile, run_schedule, run_schedule_serial,
    FusedGroup, SchedOptions, Schedule, TilePolicy,
};
pub use tuned::{run_tuned, TunedConfig, TunedStrategy};
