//! The conventional *scatter* adjoint — the baseline a source-to-source AD
//! tool like Tapenade produces (§1, Fig. 5 right).
//!
//! For `w[c] = f(u[c+o], ...)` the reverse sweep is
//! `ub[c+o] += ∂f/∂u[c+o](c) · wb[c]` over the primal iteration space: a
//! scatter update whose parallelisation needs atomics (or colouring, or
//! privatised reductions). `perforad-exec` runs these nests serially and in
//! parallel-with-atomics so the paper's baselines can be measured.

use crate::adjoint::ActivityMap;
use crate::error::CoreError;
use crate::nest::{LoopNest, Statement};
use crate::validate::{access_offsets, validate};
use perforad_symbolic::{diff, visit, Access, DiffVar, Expr, Idx};

impl LoopNest {
    /// Produce the conventional scatter adjoint of this gather nest as a
    /// single loop nest over the *primal* iteration space.
    pub fn scatter_adjoint(&self, act: &ActivityMap) -> Result<LoopNest, CoreError> {
        validate(self)?;
        let counter_ix: Vec<Idx> = self.counters.iter().map(Idx::from).collect();
        let mut body = Vec::new();
        for stmt in &self.body {
            let wb = act
                .adjoint_of(&stmt.lhs.array)
                .ok_or_else(|| CoreError::InactiveOutput(stmt.lhs.array.name().to_string()))?;
            let wb_access = Expr::access(Access::new(wb.clone(), counter_ix.clone()));
            for access in visit::accesses(&stmt.rhs) {
                let Some(ub) = act.adjoint_of(&access.array) else {
                    continue;
                };
                let offset = access_offsets(self, &access)?;
                let partial = diff(&stmt.rhs, &DiffVar::Access(access.clone()))?;
                if partial.is_zero() {
                    continue;
                }
                let lhs_indices: Vec<Idx> = self
                    .counters
                    .iter()
                    .zip(&offset)
                    .map(|(c, &o)| Idx::sym(c.clone()) + o)
                    .collect();
                body.push(Statement::add_assign(
                    Access::new(ub.clone(), lhs_indices),
                    partial * &wb_access,
                ));
            }
        }
        Ok(LoopNest::new(
            self.counters.clone(),
            self.bounds.clone(),
            body,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::Bound;
    use perforad_symbolic::{ix, Array, Symbol};

    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let c = Array::new("c");
        let rhs = c.at(ix![&i])
            * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1]));
        LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, Idx::sym(n) - 1)],
            vec![Statement::assign(Access::new("r", ix![&i]), rhs)],
        )
    }

    #[test]
    fn scatter_adjoint_matches_paper_form() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_1d().scatter_adjoint(&act).unwrap();
        // Same iteration space as the primal.
        assert_eq!(format!("{}", adj.bounds[0]), "[1, n - 1]");
        // Three scatter statements: ub[i-1], ub[i], ub[i+1].
        assert_eq!(adj.body.len(), 3);
        assert!(!adj.is_gather());
        let texts: Vec<String> = adj.body.iter().map(|s| s.to_string()).collect();
        assert!(
            texts.contains(&"u_b(i - 1) += 2.0*c(i)*r_b(i)".to_string()),
            "{texts:?}"
        );
        assert!(
            texts.contains(&"u_b(i) += -3.0*c(i)*r_b(i)".to_string()),
            "{texts:?}"
        );
        assert!(
            texts.contains(&"u_b(i + 1) += 4.0*c(i)*r_b(i)".to_string()),
            "{texts:?}"
        );
    }

    #[test]
    fn write_offsets_reflect_scatter() {
        let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
        let adj = paper_1d().scatter_adjoint(&act).unwrap();
        assert_eq!(adj.write_offsets(), Some(vec![vec![-1], vec![0], vec![1]]));
    }

    #[test]
    fn requires_active_output() {
        let act = ActivityMap::new().with_suffixed("u");
        assert!(paper_1d().scatter_adjoint(&act).is_err());
    }
}
