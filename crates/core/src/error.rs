//! Errors raised by IR validation and the adjoint transformation.

use perforad_symbolic::SymError;
use std::fmt;

/// Why a loop nest was rejected or a transformation failed.
///
/// These correspond to the restrictions of §3.4 of the paper: disjoint
/// read/write sets, outputs indexed by the loop counters, inputs read at
/// constant offsets of the counters, perfect nests and affine bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The loop body is empty.
    EmptyBody,
    /// Number of bounds does not match number of counters.
    BoundsMismatch { counters: usize, bounds: usize },
    /// The same counter appears twice in the nest.
    DuplicateCounter(String),
    /// A loop bound references one of the loop counters (non-rectangular
    /// primal iteration spaces are not supported).
    NonRectangularBounds(String),
    /// An array is both read and written in the nest.
    ReadWriteOverlap(String),
    /// Two statements write to the same array.
    MultipleWrites(String),
    /// An output array is indexed by something other than the loop counters
    /// in order (permuted/partial write indices are not supported yet).
    BadWriteIndex { array: String, detail: String },
    /// An input array access index is not `counter + constant`.
    BadReadIndex { array: String, index: String },
    /// The output array of a statement is not in the activity map, so no
    /// adjoint seed exists for it.
    InactiveOutput(String),
    /// Differentiation failed in the symbolic layer.
    Symbolic(SymError),
    /// The transformation currently handles single-statement nests
    /// (like PerforAD); this nest has several.
    MultiStatementUnsupported(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyBody => write!(f, "loop nest has an empty body"),
            CoreError::BoundsMismatch { counters, bounds } => write!(
                f,
                "loop nest has {counters} counters but {bounds} bounds"
            ),
            CoreError::DuplicateCounter(c) => write!(f, "duplicate loop counter `{c}`"),
            CoreError::NonRectangularBounds(c) => write!(
                f,
                "loop bounds reference counter `{c}`; the primal iteration space must be rectangular"
            ),
            CoreError::ReadWriteOverlap(a) => write!(
                f,
                "array `{a}` is both read and written (§3.4 requires disjoint read/write sets)"
            ),
            CoreError::MultipleWrites(a) => write!(f, "array `{a}` is written by more than one statement"),
            CoreError::BadWriteIndex { array, detail } => {
                write!(f, "output `{array}` must be indexed by the loop counters: {detail}")
            }
            CoreError::BadReadIndex { array, index } => write!(
                f,
                "input `{array}` read at `{index}`, which is not a constant offset of a loop counter"
            ),
            CoreError::InactiveOutput(a) => write!(
                f,
                "output array `{a}` has no adjoint counterpart in the activity map"
            ),
            CoreError::Symbolic(e) => write!(f, "symbolic differentiation failed: {e}"),
            CoreError::MultiStatementUnsupported(n) => write!(
                f,
                "adjoint transformation supports single-statement bodies (got {n} statements)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Symbolic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SymError> for CoreError {
    fn from(e: SymError) -> Self {
        CoreError::Symbolic(e)
    }
}
