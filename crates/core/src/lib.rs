//! # perforad-core
//!
//! The core of **PerforAD-rs** — a Rust reproduction of *"Automatic
//! Differentiation for Adjoint Stencil Loops"* (Hückelheim et al., ICPP
//! 2019): an AD-aware loop transformation that differentiates gather stencil
//! loops into gather-only adjoint stencil loops.
//!
//! Conventional reverse-mode AD turns the gather
//!
//! ```text
//! r[i] = c[i]*(2*u[i-1] - 3*u[i] + 4*u[i+1])
//! ```
//!
//! into a scatter (`ub[i±1] += …`), which parallelises poorly. The adjoint
//! stencil transformation instead produces a *core* gather loop plus small
//! boundary loops, all race-free:
//!
//! ```
//! use perforad_core::{ActivityMap, AdjointOptions, make_loop_nest};
//! use perforad_symbolic::{Array, Symbol, Idx, ix};
//!
//! let (i, n) = (Symbol::new("i"), Symbol::new("n"));
//! let (u, c, r) = (Array::new("u"), Array::new("c"), Array::new("r"));
//! let body = c.at(ix![&i]) * (2.0*u.at(ix![&i - 1]) - 3.0*u.at(ix![&i]) + 4.0*u.at(ix![&i + 1]));
//! let nest = make_loop_nest(&r.at(ix![&i]), body, vec![i.clone()],
//!                           vec![(Idx::constant(1), Idx::sym(n) - 1)]).unwrap();
//!
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//! assert_eq!(adjoint.nest_count(), 5);                    // §3.2 of the paper
//! assert!(adjoint.nests.iter().all(|n| n.is_gather()));   // no scatter anywhere
//! ```
//!
//! Modules:
//! * [`nest`] — the loop-nest IR ([`LoopNest`], [`Statement`], [`Bound`]);
//! * [`validate`] — the §3.4 restrictions;
//! * [`adjoint`] — the transformation (§3.3) with three boundary strategies;
//! * [`regions`] — disjoint iteration-space decomposition (§3.3.3–3.3.4);
//! * [`scatter`] — the conventional scatter adjoint baseline;
//! * [`merge`] — statement merging (§3.2's merged core loop);
//! * [`builder`] — `makeLoopNest`-style construction.

pub mod adjoint;
pub mod builder;
pub mod error;
pub mod merge;
pub mod nest;
pub mod regions;
pub mod scatter;
pub mod validate;

pub use adjoint::{ActivityMap, Adjoint, AdjointOptions, AdjointTerm, BoundaryStrategy};
pub use builder::{make_loop_nest, StencilSpec};
pub use error::CoreError;
pub use merge::merge_statements;
pub use nest::{AssignOp, Bound, Guard, LoopNest, Statement};
pub use regions::{
    access_boxes, core_bounds, full_bounds, required_extent, split_disjoint, split_guarded,
    AccessBox, Region,
};
pub use validate::validate;
