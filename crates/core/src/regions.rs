//! Iteration-space decomposition for adjoint stencil loops (§3.3.3–§3.3.4).
//!
//! After shifting, the derivative statement with primal access offset `o` is
//! valid on the translated box `Π_d [lo_d + o_d, hi_d + o_d]`. This module
//! splits the union of those boxes into *disjoint* regions such that each
//! region executes exactly the statements valid everywhere inside it — the
//! paper's splitting strategy, which needs no synchronisation between the
//! generated loop nests because every output index is touched by one nest
//! only.
//!
//! The split is hierarchical: in the outermost dimension the distinct
//! offsets `o⁽¹⁾ < … < o⁽ᵐ⁾` of the currently-valid statements induce
//! `2m−1` segments (m−1 left remainders, the core, m−1 right remainders);
//! each segment recurses into the next dimension with the statement subset
//! valid there. For dense stencils with `n` points per dimension this yields
//! the paper's `(2n−1)^d` bound; for star stencils far fewer (53 nests for
//! the 3-D 7-point stencil, 5 for the 1-D 3-point stencil of §3.2).

use crate::error::CoreError;
use crate::nest::{Bound, LoopNest};
use crate::validate::access_offsets;
use perforad_symbolic::{visit, Symbol};
use std::collections::BTreeSet;

/// One region of the decomposed adjoint iteration space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Per-dimension inclusive bounds.
    pub bounds: Vec<Bound>,
    /// Indices (into the caller's term list) of the statements valid here.
    pub terms: Vec<usize>,
    /// True for the unique region on which *every* statement is valid.
    pub is_core: bool,
}

/// One memory footprint of a loop nest: the symbolic box an array is read
/// or written over, i.e. the nest bounds translated by the access offset.
///
/// This is the region metadata an execution scheduler needs to prove two
/// nests independent (read-set/write-set overlap tests): statement guards
/// are ignored, so the boxes *over-approximate* the true footprint — safe
/// for dependence checking, never unsound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessBox {
    /// The array touched.
    pub array: Symbol,
    /// Per-dimension inclusive symbolic bounds of the touched box.
    pub bounds: Vec<Bound>,
    /// True for a write footprint, false for a read.
    pub write: bool,
}

/// The read and write footprints of a nest, one box per distinct
/// `(array, offset, is_write)` triple.
///
/// Requires stencil-shaped accesses (constant offsets of the counters) —
/// the same restriction the §3.4 validation imposes — and supports both
/// gather and scatter nests.
pub fn access_boxes(nest: &LoopNest) -> Result<Vec<AccessBox>, CoreError> {
    let mut seen: BTreeSet<(Symbol, Vec<i64>, bool)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |array: &Symbol, offset: &[i64], write: bool, out: &mut Vec<AccessBox>| {
        if seen.insert((array.clone(), offset.to_vec(), write)) {
            let bounds = nest
                .bounds
                .iter()
                .zip(offset)
                .map(|(b, &o)| b.shift(o))
                .collect();
            out.push(AccessBox {
                array: array.clone(),
                bounds,
                write,
            });
        }
    };
    for s in &nest.body {
        let mut woff = Vec::with_capacity(nest.counters.len());
        if s.lhs.indices.len() != nest.counters.len() {
            return Err(CoreError::BadWriteIndex {
                array: s.lhs.array.name().to_string(),
                detail: format!(
                    "{} indices for a {}-deep nest",
                    s.lhs.indices.len(),
                    nest.counters.len()
                ),
            });
        }
        for (ix, c) in s.lhs.indices.iter().zip(&nest.counters) {
            match ix.is_offset_of(c) {
                Some(o) => woff.push(o),
                None => {
                    return Err(CoreError::BadWriteIndex {
                        array: s.lhs.array.name().to_string(),
                        detail: format!("index `{ix}` is not counter + constant"),
                    })
                }
            }
        }
        push(&s.lhs.array, &woff, true, &mut out);
        for a in visit::accesses(&s.rhs) {
            let off = access_offsets(nest, &a)?;
            push(&a.array, &off, false, &mut out);
        }
    }
    Ok(out)
}

/// The core loop bounds: `[lo_d + max_t o_d(t), hi_d + min_t o_d(t)]`.
pub fn core_bounds(primal: &[Bound], offsets: &[Vec<i64>]) -> Vec<Bound> {
    primal
        .iter()
        .enumerate()
        .map(|(d, b)| {
            let max = offsets.iter().map(|o| o[d]).max().unwrap_or(0);
            let min = offsets.iter().map(|o| o[d]).min().unwrap_or(0);
            Bound {
                lo: b.lo.shift(max),
                hi: b.hi.shift(min),
            }
        })
        .collect()
}

/// The full adjoint iteration space: union of all shifted boxes,
/// `[lo_d + min_t o_d(t), hi_d + max_t o_d(t)]` per dimension.
pub fn full_bounds(primal: &[Bound], offsets: &[Vec<i64>]) -> Vec<Bound> {
    primal
        .iter()
        .enumerate()
        .map(|(d, b)| {
            let max = offsets.iter().map(|o| o[d]).max().unwrap_or(0);
            let min = offsets.iter().map(|o| o[d]).min().unwrap_or(0);
            Bound {
                lo: b.lo.shift(min),
                hi: b.hi.shift(max),
            }
        })
        .collect()
}

/// Per-dimension offset spread `max_t o_d(t) − min_t o_d(t)`.
///
/// The decomposition's regions are disjoint only when each primal extent is
/// at least this large ("n sufficiently large" in §3.2); executors check the
/// condition at bind time.
pub fn required_extent(offsets: &[Vec<i64>], rank: usize) -> Vec<i64> {
    (0..rank)
        .map(|d| {
            let max = offsets.iter().map(|o| o[d]).max().unwrap_or(0);
            let min = offsets.iter().map(|o| o[d]).min().unwrap_or(0);
            max - min
        })
        .collect()
}

/// Recursively split the adjoint iteration space into disjoint regions.
///
/// `offsets[t]` is the primal access offset vector of statement `t`; the
/// shifted statement `t` is valid on `Π_d [lo_d + o_d(t), hi_d + o_d(t)]`.
pub fn split_disjoint(primal: &[Bound], offsets: &[Vec<i64>]) -> Vec<Region> {
    let rank = primal.len();
    let all: Vec<usize> = (0..offsets.len()).collect();
    let mut out = Vec::new();
    if offsets.is_empty() {
        return out;
    }
    rec(primal, offsets, 0, rank, &all, Vec::new(), true, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn rec(
    primal: &[Bound],
    offsets: &[Vec<i64>],
    d: usize,
    rank: usize,
    active: &[usize],
    prefix: Vec<Bound>,
    core_path: bool,
    out: &mut Vec<Region>,
) {
    if d == rank {
        out.push(Region {
            bounds: prefix,
            terms: active.to_vec(),
            is_core: core_path,
        });
        return;
    }
    let distinct: BTreeSet<i64> = active.iter().map(|&t| offsets[t][d]).collect();
    let os: Vec<i64> = distinct.into_iter().collect();
    let m = os.len();
    let (lo, hi) = (&primal[d].lo, &primal[d].hi);

    // Left remainders: [lo+o_k, lo+o_{k+1} - 1] admits offsets <= o_k.
    for k in 0..m - 1 {
        let seg = Bound {
            lo: lo.shift(os[k]),
            hi: lo.shift(os[k + 1] - 1),
        };
        let subset: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&t| offsets[t][d] <= os[k])
            .collect();
        let mut p = prefix.clone();
        p.push(seg);
        rec(primal, offsets, d + 1, rank, &subset, p, false, out);
    }

    // Core segment: [lo + o_max, hi + o_min] admits every active statement.
    {
        let seg = Bound {
            lo: lo.shift(os[m - 1]),
            hi: hi.shift(os[0]),
        };
        let mut p = prefix.clone();
        p.push(seg);
        rec(primal, offsets, d + 1, rank, active, p, core_path, out);
    }

    // Right remainders: [hi+o_k + 1, hi+o_{k+1}] admits offsets >= o_{k+1}.
    for k in 0..m - 1 {
        let seg = Bound {
            lo: hi.shift(os[k] + 1),
            hi: hi.shift(os[k + 1]),
        };
        let subset: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&t| offsets[t][d] >= os[k + 1])
            .collect();
        let mut p = prefix.clone();
        p.push(seg);
        rec(primal, offsets, d + 1, rank, &subset, p, false, out);
    }
}

/// Slab decomposition for the *guarded* strategy: one remainder slab per
/// side per dimension (statements carry guards), plus the unguarded core.
///
/// Returns `(core, slabs)`; every slab region lists all statements.
pub fn split_guarded(primal: &[Bound], offsets: &[Vec<i64>]) -> (Region, Vec<Region>) {
    let rank = primal.len();
    let core = Region {
        bounds: core_bounds(primal, offsets),
        terms: (0..offsets.len()).collect(),
        is_core: true,
    };
    let full = full_bounds(primal, offsets);
    let corebs = core_bounds(primal, offsets);
    let mut slabs = Vec::new();
    for d in 0..rank {
        let min = offsets.iter().map(|o| o[d]).min().unwrap_or(0);
        let max = offsets.iter().map(|o| o[d]).max().unwrap_or(0);
        if min == max {
            continue; // no remainder in this dimension
        }
        // dims < d: core range; dim d: lower/upper remainder; dims > d: full.
        let mut lower = Vec::with_capacity(rank);
        let mut upper = Vec::with_capacity(rank);
        for k in 0..rank {
            if k < d {
                lower.push(corebs[k].clone());
                upper.push(corebs[k].clone());
            } else if k > d {
                lower.push(full[k].clone());
                upper.push(full[k].clone());
            } else {
                lower.push(Bound {
                    lo: primal[d].lo.shift(min),
                    hi: primal[d].lo.shift(max - 1),
                });
                upper.push(Bound {
                    lo: primal[d].hi.shift(min + 1),
                    hi: primal[d].hi.shift(max),
                });
            }
        }
        slabs.push(Region {
            bounds: lower,
            terms: (0..offsets.len()).collect(),
            is_core: false,
        });
        slabs.push(Region {
            bounds: upper,
            terms: (0..offsets.len()).collect(),
            is_core: false,
        });
    }
    (core, slabs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_symbolic::{Idx, Symbol};

    fn bounds1d() -> Vec<Bound> {
        let n = Symbol::new("n");
        vec![Bound::new(1, Idx::sym(n) - 1)]
    }

    fn star(rank: usize) -> Vec<Vec<i64>> {
        // centre + ±1 along each axis
        let mut v = vec![vec![0; rank]];
        for d in 0..rank {
            for s in [-1i64, 1] {
                let mut o = vec![0; rank];
                o[d] = s;
                v.push(o);
            }
        }
        v
    }

    fn dense(rank: usize) -> Vec<Vec<i64>> {
        let mut v = vec![vec![]];
        for _ in 0..rank {
            let mut next = Vec::new();
            for p in &v {
                for s in [-1i64, 0, 1] {
                    let mut q = p.clone();
                    q.push(s);
                    next.push(q);
                }
            }
            v = next;
        }
        v
    }

    #[test]
    fn one_d_three_point_gives_five_loops() {
        // §3.2: the 1-D three-point stencil yields 5 adjoint loops.
        let regions = split_disjoint(&bounds1d(), &dense(1));
        assert_eq!(regions.len(), 5);
        assert_eq!(regions.iter().filter(|r| r.is_core).count(), 1);
    }

    #[test]
    fn paper_loop_nest_counts() {
        // §3.3.4: 25 for dense 3×3 (2-D), 125 for dense 3×3×3 (3-D),
        // 53 for the 3-D 7-point star.
        let b2: Vec<Bound> = vec![bounds1d()[0].clone(), bounds1d()[0].clone()];
        let b3: Vec<Bound> = vec![
            bounds1d()[0].clone(),
            bounds1d()[0].clone(),
            bounds1d()[0].clone(),
        ];
        assert_eq!(split_disjoint(&b2, &dense(2)).len(), 25);
        assert_eq!(split_disjoint(&b3, &dense(3)).len(), 125);
        assert_eq!(split_disjoint(&b3, &star(3)).len(), 53);
    }

    #[test]
    fn two_d_five_point_star_matches_figure_3() {
        // Fig. 3 shows the 2-D 5-point decomposition: 17 loop nests
        // (the 3×3 block grid with empty corners, edges merged per column).
        let b2: Vec<Bound> = vec![bounds1d()[0].clone(), bounds1d()[0].clone()];
        let regions = split_disjoint(&b2, &star(2));
        assert_eq!(regions.len(), 17);
    }

    #[test]
    fn one_d_example_bounds_match_paper() {
        // §3.2 expects: j=0 (one stmt), j=1 (two), core [2, n-2] (three),
        // j=n-1 (two), j=n (one), for primal i ∈ [1, n-1], offsets -1,0,1.
        let regions = split_disjoint(&bounds1d(), &dense(1));
        let display: Vec<(String, usize, bool)> = regions
            .iter()
            .map(|r| (format!("{}", r.bounds[0]), r.terms.len(), r.is_core))
            .collect();
        assert_eq!(
            display,
            vec![
                ("[0, 0]".to_string(), 1, false),
                ("[1, 1]".to_string(), 2, false),
                ("[2, n - 2]".to_string(), 3, true),
                ("[n - 1, n - 1]".to_string(), 2, false),
                ("[n, n]".to_string(), 1, false),
            ]
        );
    }

    #[test]
    fn core_and_full_bounds() {
        let cb = core_bounds(&bounds1d(), &dense(1));
        assert_eq!(format!("{}", cb[0]), "[2, n - 2]");
        let fb = full_bounds(&bounds1d(), &dense(1));
        assert_eq!(format!("{}", fb[0]), "[0, n]");
        assert_eq!(required_extent(&dense(1), 1), vec![2]);
    }

    #[test]
    fn zero_offset_only_keeps_primal_bounds() {
        let regions = split_disjoint(&bounds1d(), &[vec![0]]);
        assert_eq!(regions.len(), 1);
        assert!(regions[0].is_core);
        assert_eq!(format!("{}", regions[0].bounds[0]), "[1, n - 1]");
    }

    #[test]
    fn asymmetric_offsets() {
        // Offsets {0, 2}: left remainders [lo, lo+1], core [lo+2, hi],
        // right remainders [hi+1, hi+2].
        let regions = split_disjoint(&bounds1d(), &[vec![0], vec![2]]);
        assert_eq!(regions.len(), 3);
        assert_eq!(format!("{}", regions[0].bounds[0]), "[1, 2]");
        assert_eq!(regions[0].terms, vec![0]);
        assert_eq!(format!("{}", regions[1].bounds[0]), "[3, n - 1]");
        assert_eq!(regions[1].terms, vec![0, 1]);
        assert_eq!(format!("{}", regions[2].bounds[0]), "[n, n + 1]");
        assert_eq!(regions[2].terms, vec![1]);
    }

    #[test]
    fn guarded_slab_count() {
        // 2 slabs per dimension with remainders + core.
        let b3: Vec<Bound> = vec![
            bounds1d()[0].clone(),
            bounds1d()[0].clone(),
            bounds1d()[0].clone(),
        ];
        let (core, slabs) = split_guarded(&b3, &star(3));
        assert!(core.is_core);
        assert_eq!(slabs.len(), 6);
    }

    /// Exhaustive coverage check on a concrete grid: every point of the full
    /// adjoint space is covered by exactly one region, and that region's
    /// statement set is exactly the set of statements valid at the point.
    fn check_coverage(offsets: &[Vec<i64>], lo: i64, hi: i64, rank: usize) {
        use std::collections::BTreeMap;
        let n = Symbol::new("n");
        let primal: Vec<Bound> = (0..rank)
            .map(|_| Bound::new(lo, Idx::sym(n.clone()) + (hi - 10))) // hi = n + (hi-10) with n=10
            .collect();
        let mut env = BTreeMap::new();
        env.insert(n.clone(), 10i64);
        let regions = split_disjoint(&primal, offsets);

        // Enumerate the full adjoint space.
        let full = full_bounds(&primal, offsets);
        let lo_v: Vec<i64> = full.iter().map(|b| b.lo.eval(&env).unwrap()).collect();
        let hi_v: Vec<i64> = full.iter().map(|b| b.hi.eval(&env).unwrap()).collect();
        let mut point = lo_v.clone();
        loop {
            // Which statements are valid here?
            let mut expect: Vec<usize> = Vec::new();
            for (t, o) in offsets.iter().enumerate() {
                let ok = (0..rank).all(|d| {
                    let l = primal[d].lo.eval(&env).unwrap() + o[d];
                    let h = primal[d].hi.eval(&env).unwrap() + o[d];
                    point[d] >= l && point[d] <= h
                });
                if ok {
                    expect.push(t);
                }
            }
            // Which regions contain this point?
            let mut got: Vec<&Region> = Vec::new();
            for r in &regions {
                let inside = (0..rank).all(|d| {
                    let l = r.bounds[d].lo.eval(&env).unwrap();
                    let h = r.bounds[d].hi.eval(&env).unwrap();
                    point[d] >= l && point[d] <= h
                });
                if inside {
                    got.push(r);
                }
            }
            if expect.is_empty() {
                // Outside every shifted box (e.g. star-stencil corners):
                // no region may cover the point.
                assert!(
                    got.is_empty(),
                    "point {point:?} covered but no statement valid"
                );
            } else {
                assert_eq!(
                    got.len(),
                    1,
                    "point {point:?} covered by {} regions",
                    got.len()
                );
                assert_eq!(got[0].terms, expect, "wrong statement set at {point:?}");
            }

            // Advance odometer.
            let mut d = rank;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                point[d] += 1;
                if point[d] <= hi_v[d] {
                    break;
                }
                point[d] = lo_v[d];
            }
        }
    }

    #[test]
    fn access_boxes_of_three_point_stencil() {
        use crate::nest::Statement;
        use perforad_symbolic::{ix, Access, Array};
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let nest = LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, Idx::sym(n) - 1)],
            vec![Statement::assign(
                Access::new("r", ix![&i]),
                u.at(ix![&i - 1]) + u.at(ix![&i + 1]),
            )],
        );
        let boxes = access_boxes(&nest).unwrap();
        // One write box (r at centre) + two read boxes (u at ±1).
        assert_eq!(boxes.len(), 3);
        let w: Vec<_> = boxes.iter().filter(|b| b.write).collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].array, Symbol::new("r"));
        assert_eq!(format!("{}", w[0].bounds[0]), "[1, n - 1]");
        let r: Vec<String> = boxes
            .iter()
            .filter(|b| !b.write)
            .map(|b| format!("{}", b.bounds[0]))
            .collect();
        assert_eq!(r, vec!["[0, n - 2]".to_string(), "[2, n]".to_string()]);
    }

    #[test]
    fn access_boxes_dedup_and_scatter_writes() {
        use crate::nest::Statement;
        use perforad_symbolic::{ix, Access, Array};
        let i = Symbol::new("i");
        let rb = Array::new("rb");
        // Scatter nest: ub[i-1] += rb[i]; ub[i+1] += rb[i].
        let nest = LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, 8)],
            vec![
                Statement::add_assign(Access::new("ub", ix![&i - 1]), rb.at(ix![&i])),
                Statement::add_assign(Access::new("ub", ix![&i + 1]), rb.at(ix![&i])),
            ],
        );
        let boxes = access_boxes(&nest).unwrap();
        // Two distinct write boxes, one deduplicated read box.
        assert_eq!(boxes.iter().filter(|b| b.write).count(), 2);
        assert_eq!(boxes.iter().filter(|b| !b.write).count(), 1);
    }

    #[test]
    fn coverage_1d_dense() {
        check_coverage(&dense(1), 1, 9, 1);
    }

    #[test]
    fn coverage_2d_star() {
        check_coverage(&star(2), 1, 9, 2);
    }

    #[test]
    fn coverage_2d_dense() {
        check_coverage(&dense(2), 1, 9, 2);
    }

    #[test]
    fn coverage_asymmetric_2d() {
        check_coverage(&[vec![0, 0], vec![2, -1], vec![-1, 2], vec![1, 1]], 2, 9, 2);
    }
}
