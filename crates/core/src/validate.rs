//! Loop-nest validation — the restrictions of §3.4 of the paper.
//!
//! The adjoint stencil transformation requires:
//!
//! * read and write array sets are disjoint (`+=` self-reads excepted,
//!   because they contribute the identity to the adjoint);
//! * output arrays are indexed by exactly the loop counters, in order;
//! * input arrays are read at constant integer offsets of the counters;
//! * the nest is perfect and rectangular with affine bounds (affinity is
//!   guaranteed structurally by [`Idx`]).
//!
//! [`Idx`]: perforad_symbolic::Idx

use crate::error::CoreError;
use crate::nest::LoopNest;
use perforad_symbolic::visit;
use std::collections::BTreeSet;

/// Per-access constant offsets of a read, aligned with the nest counters.
pub fn access_offsets(
    nest: &LoopNest,
    a: &perforad_symbolic::Access,
) -> Result<Vec<i64>, CoreError> {
    if a.indices.len() != nest.counters.len() {
        return Err(CoreError::BadReadIndex {
            array: a.array.name().to_string(),
            index: format!("{a}"),
        });
    }
    let mut off = Vec::with_capacity(a.indices.len());
    for (ix, c) in a.indices.iter().zip(&nest.counters) {
        match ix.is_offset_of(c) {
            Some(o) => off.push(o),
            None => {
                return Err(CoreError::BadReadIndex {
                    array: a.array.name().to_string(),
                    index: format!("{a}"),
                })
            }
        }
    }
    Ok(off)
}

/// Validate a *gather* stencil nest as a transformation input.
pub fn validate(nest: &LoopNest) -> Result<(), CoreError> {
    if nest.body.is_empty() {
        return Err(CoreError::EmptyBody);
    }
    if nest.counters.len() != nest.bounds.len() {
        return Err(CoreError::BoundsMismatch {
            counters: nest.counters.len(),
            bounds: nest.bounds.len(),
        });
    }
    // Distinct counters.
    let mut seen = BTreeSet::new();
    for c in &nest.counters {
        if !seen.insert(c.clone()) {
            return Err(CoreError::DuplicateCounter(c.name().to_string()));
        }
    }
    // Rectangular bounds: no counter may appear in any bound.
    for b in &nest.bounds {
        for c in &nest.counters {
            if b.lo.coeff(c) != 0 || b.hi.coeff(c) != 0 {
                return Err(CoreError::NonRectangularBounds(c.name().to_string()));
            }
        }
    }
    // One write per array.
    let mut written = BTreeSet::new();
    for s in &nest.body {
        if !written.insert(s.lhs.array.clone()) {
            return Err(CoreError::MultipleWrites(s.lhs.array.name().to_string()));
        }
    }
    // Reads and writes must be disjoint.
    for s in &nest.body {
        for arr in visit::arrays(&s.rhs) {
            if written.contains(&arr) {
                return Err(CoreError::ReadWriteOverlap(arr.name().to_string()));
            }
        }
    }
    // Writes at exactly the counters, in order.
    for s in &nest.body {
        if s.lhs.indices.len() != nest.counters.len() {
            return Err(CoreError::BadWriteIndex {
                array: s.lhs.array.name().to_string(),
                detail: format!(
                    "{} indices for a {}-deep nest",
                    s.lhs.indices.len(),
                    nest.counters.len()
                ),
            });
        }
        for (ix, c) in s.lhs.indices.iter().zip(&nest.counters) {
            if ix.is_offset_of(c) != Some(0) {
                return Err(CoreError::BadWriteIndex {
                    array: s.lhs.array.name().to_string(),
                    detail: format!("index `{ix}` is not counter `{c}`"),
                });
            }
        }
    }
    // Reads at constant offsets of the counters.
    for s in &nest.body {
        for a in visit::accesses(&s.rhs) {
            access_offsets(nest, &a)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{Bound, Statement};
    use perforad_symbolic::{ix, Access, Array, Idx, Symbol};

    fn i() -> Symbol {
        Symbol::new("i")
    }

    fn simple(rhs: perforad_symbolic::Expr, lhs: Access) -> LoopNest {
        LoopNest::new(
            vec![i()],
            vec![Bound::new(1, Idx::sym(Symbol::new("n")) - 2)],
            vec![Statement::assign(lhs, rhs)],
        )
    }

    #[test]
    fn accepts_valid_stencil() {
        let u = Array::new("u");
        let nest = simple(
            u.at(ix![&i() - 1]) + u.at(ix![&i() + 1]),
            Access::new("r", ix![&i()]),
        );
        assert!(validate(&nest).is_ok());
    }

    #[test]
    fn rejects_read_write_overlap() {
        let r = Array::new("r");
        let nest = simple(r.at(ix![&i() - 1]), Access::new("r", ix![&i()]));
        assert_eq!(
            validate(&nest),
            Err(CoreError::ReadWriteOverlap("r".into()))
        );
    }

    #[test]
    fn rejects_scaled_write_index() {
        let u = Array::new("u");
        let nest = simple(u.at(ix![&i()]), Access::new("r", vec![Idx::scaled(i(), 2)]));
        assert!(matches!(
            validate(&nest),
            Err(CoreError::BadWriteIndex { .. })
        ));
    }

    #[test]
    fn rejects_nonconstant_read_offset() {
        let u = Array::new("u");
        // u[2i] is not counter + constant
        let nest = simple(u.at(vec![Idx::scaled(i(), 2)]), Access::new("r", ix![&i()]));
        assert!(matches!(
            validate(&nest),
            Err(CoreError::BadReadIndex { .. })
        ));
    }

    #[test]
    fn rejects_read_using_extent_symbol() {
        let u = Array::new("u");
        // u[n-1] — constant in the counters, still rejected (not a stencil read).
        let nest = simple(
            u.at(vec![Idx::sym(Symbol::new("n")) - 1]),
            Access::new("r", ix![&i()]),
        );
        assert!(matches!(
            validate(&nest),
            Err(CoreError::BadReadIndex { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_counters() {
        let u = Array::new("u");
        let nest = LoopNest::new(
            vec![i(), i()],
            vec![Bound::new(0, 1), Bound::new(0, 1)],
            vec![Statement::assign(
                Access::new("r", ix![&i(), &i()]),
                u.at(ix![&i(), &i()]),
            )],
        );
        assert_eq!(
            validate(&nest),
            Err(CoreError::DuplicateCounter("i".into()))
        );
    }

    #[test]
    fn rejects_triangular_bounds() {
        let u = Array::new("u");
        let j = Symbol::new("j");
        let nest = LoopNest::new(
            vec![i(), j.clone()],
            vec![Bound::new(0, 10), Bound::new(0, Idx::sym(i()))],
            vec![Statement::assign(
                Access::new("r", ix![&i(), &j]),
                u.at(ix![&i(), &j]),
            )],
        );
        assert!(matches!(
            validate(&nest),
            Err(CoreError::NonRectangularBounds(_))
        ));
    }

    #[test]
    fn rejects_empty_body_and_bound_mismatch() {
        let nest = LoopNest::new(vec![i()], vec![Bound::new(0, 1)], vec![]);
        assert_eq!(validate(&nest), Err(CoreError::EmptyBody));
        let u = Array::new("u");
        let nest = LoopNest::new(
            vec![i()],
            vec![],
            vec![Statement::assign(
                Access::new("r", ix![&i()]),
                u.at(ix![&i()]),
            )],
        );
        assert!(matches!(
            validate(&nest),
            Err(CoreError::BoundsMismatch { .. })
        ));
    }

    #[test]
    fn rejects_two_writes_to_same_array() {
        let u = Array::new("u");
        let nest = LoopNest::new(
            vec![i()],
            vec![Bound::new(0, 1)],
            vec![
                Statement::assign(Access::new("r", ix![&i()]), u.at(ix![&i()])),
                Statement::assign(Access::new("r", ix![&i()]), u.at(ix![&i()])),
            ],
        );
        assert_eq!(validate(&nest), Err(CoreError::MultipleWrites("r".into())));
    }
}
