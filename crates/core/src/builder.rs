//! Ergonomic construction mirroring PerforAD's Python interface.
//!
//! The original scripts (Fig. 4 and Fig. 6 of the paper) call
//! `makeLoopNest(lhs=…, rhs=…, counters=…, bounds=…)`; [`make_loop_nest`]
//! is the Rust equivalent, and [`StencilSpec`] offers a builder for callers
//! who prefer incremental construction.

use crate::error::CoreError;
use crate::nest::{Bound, LoopNest, Statement};
use crate::validate::validate;
use perforad_symbolic::{Access, Expr, Idx, Node, Symbol};

/// Build (and validate) a single-statement gather stencil nest, exactly like
/// PerforAD's `makeLoopNest`. The `lhs` must be an access expression.
pub fn make_loop_nest(
    lhs: &Expr,
    rhs: Expr,
    counters: Vec<Symbol>,
    bounds: Vec<(Idx, Idx)>,
) -> Result<LoopNest, CoreError> {
    let access = match lhs.node() {
        Node::Access(a) => a.clone(),
        _ => {
            return Err(CoreError::BadWriteIndex {
                array: lhs.to_string(),
                detail: "left-hand side must be an array access".to_string(),
            })
        }
    };
    let bounds = bounds
        .into_iter()
        .map(|(lo, hi)| Bound { lo, hi })
        .collect();
    let nest = LoopNest::new(counters, bounds, vec![Statement::assign(access, rhs)]);
    validate(&nest)?;
    Ok(nest)
}

/// Incremental builder for stencil loop nests.
///
/// ```
/// use perforad_core::StencilSpec;
/// use perforad_symbolic::{Array, Symbol, Idx, ix};
///
/// let i = Symbol::new("i");
/// let n = Symbol::new("n");
/// let (u, r) = (Array::new("u"), Array::new("r"));
/// let nest = StencilSpec::new()
///     .counter(i.clone(), 1, Idx::sym(n) - 2)
///     .assign(r.at(ix![&i]), u.at(ix![&i - 1]) + u.at(ix![&i + 1]))
///     .build()
///     .unwrap();
/// assert!(nest.is_gather());
/// ```
#[derive(Default, Clone)]
pub struct StencilSpec {
    counters: Vec<Symbol>,
    bounds: Vec<Bound>,
    body: Vec<Statement>,
}

impl StencilSpec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a loop dimension with inclusive bounds.
    pub fn counter(mut self, c: impl Into<Symbol>, lo: impl Into<Idx>, hi: impl Into<Idx>) -> Self {
        self.counters.push(c.into());
        self.bounds.push(Bound::new(lo, hi));
        self
    }

    /// Add an assignment statement `lhs = rhs`.
    pub fn assign(mut self, lhs: Expr, rhs: Expr) -> Self {
        self.push(lhs, rhs, false);
        self
    }

    /// Add an increment statement `lhs += rhs`.
    pub fn add_assign(mut self, lhs: Expr, rhs: Expr) -> Self {
        self.push(lhs, rhs, true);
        self
    }

    fn push(&mut self, lhs: Expr, rhs: Expr, increment: bool) {
        let access = match lhs.node() {
            Node::Access(a) => a.clone(),
            _ => Access::new(lhs.to_string(), vec![]),
        };
        self.body.push(if increment {
            Statement::add_assign(access, rhs)
        } else {
            Statement::assign(access, rhs)
        });
    }

    /// Validate and produce the nest.
    pub fn build(self) -> Result<LoopNest, CoreError> {
        let nest = LoopNest::new(self.counters, self.bounds, self.body);
        validate(&nest)?;
        Ok(nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_symbolic::{ix, Array};

    #[test]
    fn make_loop_nest_mirrors_perforad() {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let r = Array::new("r");
        let nest = make_loop_nest(
            &r.at(ix![&i]),
            u.at(ix![&i - 1]) + u.at(ix![&i + 1]),
            vec![i.clone()],
            vec![(Idx::constant(1), Idx::sym(n) - 2)],
        )
        .unwrap();
        assert_eq!(nest.rank(), 1);
        assert!(nest.is_gather());
    }

    #[test]
    fn non_access_lhs_is_rejected() {
        let i = Symbol::new("i");
        let u = Array::new("u");
        let err = make_loop_nest(
            &Expr::int(3),
            u.at(ix![&i]),
            vec![i.clone()],
            vec![(Idx::constant(0), Idx::constant(5))],
        );
        assert!(err.is_err());
    }

    #[test]
    fn builder_validates() {
        let i = Symbol::new("i");
        let r = Array::new("r");
        // reads and writes r -> invalid
        let err = StencilSpec::new()
            .counter(i.clone(), 0, 5)
            .assign(r.at(ix![&i]), r.at(ix![&i - 1]))
            .build();
        assert!(err.is_err());
    }
}
