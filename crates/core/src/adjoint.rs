//! The adjoint stencil transformation (§3.3) — the paper's contribution.
//!
//! Given a gather stencil nest `w[c] (=|+=) f(u[c+o], ...)`, produce loop
//! nests that compute the reverse-mode adjoint
//! `ub[c+o] += ∂f/∂u[c+o] · wb[c]` using **only gather operations**:
//!
//! 1. differentiate the body with respect to each distinct active access;
//! 2. multiply by the output adjoint and *shift* indices by `−o` so every
//!    statement writes `ub[c]`;
//! 3. decompose the iteration space (core + boundary) so each statement
//!    executes exactly on its valid translated box.
//!
//! The resulting nests have the same read/write pattern as the primal, can
//! be parallelised identically, need no atomics, no extra memory and no
//! barriers between nests (their write sets are disjoint).

use crate::error::CoreError;
use crate::nest::{AssignOp, Bound, Guard, LoopNest, Statement};
use crate::regions::{self, Region};
use crate::validate::{access_offsets, validate};
use perforad_symbolic::{diff, subst, visit, Access, DiffVar, Expr, Idx, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// Maps each *active* primal array to the name of its adjoint counterpart,
/// like the `{u: u_b, u_1: u_1_b}` dictionary of the PerforAD scripts.
/// Arrays not present are passive: they are read-only data (`c`) and get no
/// derivative.
#[derive(Clone, Debug, Default)]
pub struct ActivityMap {
    map: BTreeMap<Symbol, Symbol>,
}

impl ActivityMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `primal → adjoint`.
    pub fn with(mut self, primal: impl Into<Symbol>, adjoint: impl Into<Symbol>) -> Self {
        self.map.insert(primal.into(), adjoint.into());
        self
    }

    /// Register `name → name_b` (PerforAD's conventional suffix).
    pub fn with_suffixed(self, primal: impl Into<Symbol>) -> Self {
        let p = primal.into();
        let b = Symbol::new(format!("{}_b", p.name()));
        self.with(p, b)
    }

    pub fn adjoint_of(&self, primal: &Symbol) -> Option<&Symbol> {
        self.map.get(primal)
    }

    pub fn is_active(&self, primal: &Symbol) -> bool {
        self.map.contains_key(primal)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Symbol)> {
        self.map.iter()
    }
}

/// How boundary iterations are handled (§3.3.4 discusses all three).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BoundaryStrategy {
    /// Disjoint loop nests per region (PerforAD's strategy): most code, no
    /// guards, no synchronisation, exact iteration spaces.
    #[default]
    Disjoint,
    /// One remainder slab per side per dimension; every statement carries an
    /// if-guard. Less code, branchy remainders (core stays guard-free).
    Guarded,
    /// A single nest over the full adjoint space; requires zero-padded
    /// arrays (the Halide-style approach the paper contrasts with).
    Padded,
}

/// Options for [`LoopNest::adjoint`].
#[derive(Clone, Debug, Default)]
pub struct AdjointOptions {
    pub strategy: BoundaryStrategy,
    /// Merge all updates to the same adjoint array within a nest into a
    /// single `+=` statement (the merged core loop of §3.2).
    pub merge: bool,
}

impl AdjointOptions {
    pub fn merged(mut self) -> Self {
        self.merge = true;
        self
    }

    pub fn with_strategy(mut self, s: BoundaryStrategy) -> Self {
        self.strategy = s;
        self
    }
}

/// One shifted derivative statement `S_l` together with its bookkeeping.
#[derive(Clone, Debug)]
pub struct AdjointTerm {
    /// Primal input array this term propagates into.
    pub input: Symbol,
    /// Adjoint (output) array of this term.
    pub adjoint: Symbol,
    /// Offset `o` of the primal access `u[c+o]` the term came from.
    pub offset: Vec<i64>,
    /// Shifted expression: `(∂f/∂u[c+o] · wb[c])` with `c ↦ c − o` applied.
    pub expr: Expr,
}

/// The result of the adjoint stencil transformation.
#[derive(Clone, Debug)]
pub struct Adjoint {
    /// Generated loop nests. Under [`BoundaryStrategy::Disjoint`] their
    /// iteration spaces are pairwise disjoint.
    pub nests: Vec<LoopNest>,
    /// Index into `nests` of the core loop nest (absent only if the term
    /// list is empty).
    pub core: Option<usize>,
    /// The shifted derivative statements the nests were assembled from.
    pub terms: Vec<AdjointTerm>,
    /// Strategy used (executors need to know about padding).
    pub strategy: BoundaryStrategy,
    /// Minimum primal extent per dimension for the decomposition to be
    /// disjoint (offset spread).
    pub required_extent: Vec<i64>,
    /// Loop counters (shared by all nests).
    pub counters: Vec<Symbol>,
    /// Bounds of the primal nest the adjoint was derived from.
    pub primal_bounds: Vec<Bound>,
    /// True if the primal overwrote its output (`=` rather than `+=`), in
    /// which case a multi-step driver must zero the output adjoint after
    /// propagating it.
    pub consumes_seed: bool,
}

impl Adjoint {
    /// Total number of generated loop nests (the paper's `(2n−1)^d` metric).
    pub fn nest_count(&self) -> usize {
        self.nests.len()
    }

    /// The core loop nest.
    pub fn core_nest(&self) -> Option<&LoopNest> {
        self.core.map(|k| &self.nests[k])
    }

    /// Adjoint array names written by the transformation.
    pub fn outputs(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.terms.iter().map(|t| t.adjoint.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for Adjoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, nest) in self.nests.iter().enumerate() {
            if Some(k) == self.core {
                writeln!(f, "// core loop nest")?;
            } else {
                writeln!(f, "// boundary nest {k}")?;
            }
            write!(f, "{nest}")?;
        }
        Ok(())
    }
}

impl LoopNest {
    /// Reverse-mode differentiate this gather stencil nest into gather-only
    /// adjoint stencil nests (the PerforAD transformation).
    pub fn adjoint(&self, act: &ActivityMap, opts: &AdjointOptions) -> Result<Adjoint, CoreError> {
        validate(self)?;
        let terms = derive_terms(self, act)?;
        let offsets: Vec<Vec<i64>> = terms.iter().map(|t| t.offset.clone()).collect();
        let required_extent = regions::required_extent(&offsets, self.rank());
        let consumes_seed = self.body.iter().any(|s| s.op == AssignOp::Assign);

        let mut nests = Vec::new();
        let mut core = None;
        match opts.strategy {
            BoundaryStrategy::Disjoint => {
                let regions = regions::split_disjoint(&self.bounds, &offsets);
                for r in &regions {
                    if r.is_core {
                        core = Some(nests.len());
                    }
                    nests.push(region_nest(self, &terms, r, opts.merge, false));
                }
            }
            BoundaryStrategy::Guarded => {
                let (core_r, slabs) = regions::split_guarded(&self.bounds, &offsets);
                core = Some(0);
                nests.push(region_nest(self, &terms, &core_r, opts.merge, false));
                for r in &slabs {
                    nests.push(region_nest(self, &terms, r, false, true));
                }
            }
            BoundaryStrategy::Padded => {
                let full = regions::full_bounds(&self.bounds, &offsets);
                let r = Region {
                    bounds: full,
                    terms: (0..terms.len()).collect(),
                    is_core: true,
                };
                core = Some(0);
                nests.push(region_nest(self, &terms, &r, opts.merge, false));
            }
        }
        Ok(Adjoint {
            nests,
            core,
            terms,
            strategy: opts.strategy,
            required_extent,
            counters: self.counters.clone(),
            primal_bounds: self.bounds.clone(),
            consumes_seed,
        })
    }
}

/// Differentiate every statement of the nest with respect to every distinct
/// active access, multiply by the output adjoint, and shift (§3.3.1–§3.3.2).
pub(crate) fn derive_terms(
    nest: &LoopNest,
    act: &ActivityMap,
) -> Result<Vec<AdjointTerm>, CoreError> {
    let counters = &nest.counters;
    let counter_ix: Vec<Idx> = counters.iter().map(Idx::from).collect();
    let mut terms = Vec::new();
    for stmt in &nest.body {
        let wb = act
            .adjoint_of(&stmt.lhs.array)
            .ok_or_else(|| CoreError::InactiveOutput(stmt.lhs.array.name().to_string()))?;
        let wb_access = Expr::access(Access::new(wb.clone(), counter_ix.clone()));
        for access in visit::accesses(&stmt.rhs) {
            let Some(ub) = act.adjoint_of(&access.array) else {
                continue; // passive input
            };
            let offset = access_offsets(nest, &access)?;
            let partial = diff(&stmt.rhs, &DiffVar::Access(access.clone()))?;
            if partial.is_zero() {
                continue;
            }
            // Scatter statement would be: ub[c+o] += partial(c) * wb[c].
            // Substituting c ↦ c − o turns it into the gather form
            // ub[c] += partial(c−o) * wb[c−o], valid for c ∈ [lo+o, hi+o].
            let scatter_rhs = partial * &wb_access;
            let delta: Vec<i64> = offset.iter().map(|o| -o).collect();
            let shifted = subst::shift(&scatter_rhs, counters, &delta);
            terms.push(AdjointTerm {
                input: access.array.clone(),
                adjoint: ub.clone(),
                offset,
                expr: shifted,
            });
        }
    }
    Ok(terms)
}

/// Materialise one region into a loop nest.
fn region_nest(
    primal: &LoopNest,
    terms: &[AdjointTerm],
    region: &Region,
    merge: bool,
    guard_statements: bool,
) -> LoopNest {
    let counter_ix: Vec<Idx> = primal.counters.iter().map(Idx::from).collect();
    let mut body = Vec::with_capacity(region.terms.len());
    for &t in &region.terms {
        let term = &terms[t];
        let lhs = Access::new(term.adjoint.clone(), counter_ix.clone());
        let mut stmt = Statement::add_assign(lhs, term.expr.clone());
        if guard_statements {
            // Guard with the term's valid translated box (all dimensions).
            let ranges = primal
                .counters
                .iter()
                .zip(primal.bounds.iter().zip(&term.offset))
                .map(|(c, (b, &o))| (c.clone(), b.shift(o)))
                .collect();
            stmt = stmt.with_guard(Guard { ranges });
        }
        body.push(stmt);
    }
    let mut nest = LoopNest::new(primal.counters.clone(), region.bounds.clone(), body);
    if merge {
        nest = crate::merge::merge_statements(&nest);
    }
    nest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{Bound, Statement};
    use perforad_symbolic::{ix, Array};

    /// The §3.2 example: r[i] = c[i]*(2 u[i-1] - 3 u[i] + 4 u[i+1]),
    /// i ∈ [1, n-1].
    fn paper_1d() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let c = Array::new("c");
        let rhs = c.at(ix![&i])
            * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1]));
        LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, Idx::sym(n) - 1)],
            vec![Statement::assign(Access::new("r", ix![&i]), rhs)],
        )
    }

    fn act_1d() -> ActivityMap {
        ActivityMap::new().with_suffixed("u").with_suffixed("r")
    }

    #[test]
    fn paper_example_structure() {
        let adj = paper_1d()
            .adjoint(&act_1d(), &AdjointOptions::default())
            .unwrap();
        // Five loops, one of them the core (§3.2).
        assert_eq!(adj.nest_count(), 5);
        let core = adj.core_nest().unwrap();
        assert_eq!(format!("{}", core.bounds[0]), "[2, n - 2]");
        assert_eq!(core.body.len(), 3);
        assert_eq!(adj.required_extent, vec![2]);
        assert!(adj.consumes_seed);
        // All nests are gather nests.
        for nest in &adj.nests {
            assert!(nest.is_gather());
        }
    }

    #[test]
    fn paper_example_core_statements() {
        // Core body: ub[j] += 2 c[j+1] rb[j+1]; ub[j] -= 3 c[j] rb[j];
        //            ub[j] += 4 c[j-1] rb[j-1]  (constants swapped vs primal).
        let adj = paper_1d()
            .adjoint(&act_1d(), &AdjointOptions::default())
            .unwrap();
        let core = adj.core_nest().unwrap();
        let bodies: Vec<String> = core.body.iter().map(|s| s.to_string()).collect();
        assert!(
            bodies
                .iter()
                .any(|s| s == "u_b(i) += 2.0*c(i + 1)*r_b(i + 1)"),
            "{bodies:?}"
        );
        assert!(
            bodies.iter().any(|s| s == "u_b(i) += -3.0*c(i)*r_b(i)"),
            "{bodies:?}"
        );
        assert!(
            bodies
                .iter()
                .any(|s| s == "u_b(i) += 4.0*c(i - 1)*r_b(i - 1)"),
            "{bodies:?}"
        );
    }

    #[test]
    fn merged_core_is_single_statement() {
        let adj = paper_1d()
            .adjoint(&act_1d(), &AdjointOptions::default().merged())
            .unwrap();
        let core = adj.core_nest().unwrap();
        assert_eq!(core.body.len(), 1);
        assert_eq!(
            core.body[0].to_string(),
            "u_b(i) += 4.0*c(i - 1)*r_b(i - 1) - 3.0*c(i)*r_b(i) + 2.0*c(i + 1)*r_b(i + 1)"
        );
    }

    #[test]
    fn inactive_output_is_an_error() {
        let act = ActivityMap::new().with_suffixed("u"); // r missing
        let err = paper_1d()
            .adjoint(&act, &AdjointOptions::default())
            .unwrap_err();
        assert_eq!(err, CoreError::InactiveOutput("r".into()));
    }

    #[test]
    fn passive_inputs_get_no_terms() {
        let adj = paper_1d()
            .adjoint(&act_1d(), &AdjointOptions::default())
            .unwrap();
        assert!(adj.terms.iter().all(|t| t.input.name() == "u"));
        assert_eq!(adj.outputs(), vec![Symbol::new("u_b")]);
    }

    #[test]
    fn guarded_strategy_has_three_nests_in_1d() {
        let adj = paper_1d()
            .adjoint(
                &act_1d(),
                &AdjointOptions::default().with_strategy(BoundaryStrategy::Guarded),
            )
            .unwrap();
        // core + lower slab + upper slab
        assert_eq!(adj.nest_count(), 3);
        assert!(adj.nests[0].body.iter().all(|s| s.guard.is_none()));
        assert!(adj.nests[1].body.iter().all(|s| s.guard.is_some()));
    }

    #[test]
    fn padded_strategy_is_one_nest_over_full_space() {
        let adj = paper_1d()
            .adjoint(
                &act_1d(),
                &AdjointOptions::default().with_strategy(BoundaryStrategy::Padded),
            )
            .unwrap();
        assert_eq!(adj.nest_count(), 1);
        assert_eq!(format!("{}", adj.nests[0].bounds[0]), "[0, n]");
    }

    #[test]
    fn add_assign_primal_does_not_consume_seed() {
        let mut nest = paper_1d();
        nest.body[0].op = AssignOp::AddAssign;
        let adj = nest.adjoint(&act_1d(), &AdjointOptions::default()).unwrap();
        assert!(!adj.consumes_seed);
    }

    #[test]
    fn nonlinear_body_reads_shifted_primal_values() {
        // r[i] = u[i]*u[i+1]: d/du[i+1] = u[i]; after shift by -(+1) the
        // term reads u[i-1]*r_b[i-1].
        let i = Symbol::new("i");
        let u = Array::new("u");
        let rhs = u.at(ix![&i]) * u.at(ix![&i + 1]);
        let nest = LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, Idx::sym(Symbol::new("n")) - 1)],
            vec![Statement::assign(Access::new("r", ix![&i]), rhs)],
        );
        let adj = nest.adjoint(&act_1d(), &AdjointOptions::default()).unwrap();
        let t = adj
            .terms
            .iter()
            .find(|t| t.offset == vec![1])
            .expect("term for offset +1");
        assert_eq!(t.expr.to_string(), "r_b(i - 1)*u(i - 1)");
    }
}
