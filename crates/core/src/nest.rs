//! The stencil loop-nest intermediate representation.
//!
//! A [`LoopNest`] is a perfect nest of counted loops with inclusive affine
//! bounds and a list of assignment statements in the innermost body — the
//! same abstraction PerforAD's `LoopNest` Python class encapsulates.
//! Gather loops (primal stencils and PerforAD adjoints) write at the loop
//! counters; scatter loops (conventional adjoints) write at constant offsets
//! of the counters. Both shapes are representable and executable.

use perforad_symbolic::{Access, Expr, Idx, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// Inclusive per-dimension loop bounds `for c in [lo, hi]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Bound {
    pub lo: Idx,
    pub hi: Idx,
}

impl Bound {
    pub fn new(lo: impl Into<Idx>, hi: impl Into<Idx>) -> Self {
        Bound {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Translate both ends by a constant.
    pub fn shift(&self, delta: i64) -> Bound {
        Bound {
            lo: self.lo.shift(delta),
            hi: self.hi.shift(delta),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Assignment operator of a statement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AssignOp {
    /// `lhs = rhs`
    Assign,
    /// `lhs += rhs`
    AddAssign,
}

/// A guard restricting a statement to a sub-box of the iteration space.
///
/// Used by the *guarded* boundary strategy (§3.3.4 discusses this
/// alternative): each entry constrains one counter to `[lo, hi]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Guard {
    pub ranges: Vec<(Symbol, Bound)>,
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, (c, b)) in self.ranges.iter().enumerate() {
            if k > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{} <= {c} && {c} <= {}", b.lo, b.hi)?;
        }
        Ok(())
    }
}

/// One assignment in the innermost loop body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Statement {
    pub lhs: Access,
    pub op: AssignOp,
    pub rhs: Expr,
    /// `None` for unconditional statements.
    pub guard: Option<Guard>,
}

impl Statement {
    pub fn assign(lhs: Access, rhs: Expr) -> Self {
        Statement {
            lhs,
            op: AssignOp::Assign,
            rhs,
            guard: None,
        }
    }

    pub fn add_assign(lhs: Access, rhs: Expr) -> Self {
        Statement {
            lhs,
            op: AssignOp::AddAssign,
            rhs,
            guard: None,
        }
    }

    pub fn with_guard(mut self, guard: Guard) -> Self {
        self.guard = Some(guard);
        self
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "if ({g}) ")?;
        }
        let op = match self.op {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
        };
        write!(f, "{} {op} {}", self.lhs, self.rhs)
    }
}

/// A perfect loop nest with a straight-line innermost body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNest {
    /// Loop counters, outermost first.
    pub counters: Vec<Symbol>,
    /// Inclusive bounds, aligned with `counters`.
    pub bounds: Vec<Bound>,
    /// Innermost-body statements, executed in order.
    pub body: Vec<Statement>,
}

impl LoopNest {
    pub fn new(counters: Vec<Symbol>, bounds: Vec<Bound>, body: Vec<Statement>) -> Self {
        LoopNest {
            counters,
            bounds,
            body,
        }
    }

    /// Dimensionality of the nest.
    pub fn rank(&self) -> usize {
        self.counters.len()
    }

    /// Names of all arrays written by the body.
    pub fn outputs(&self) -> BTreeSet<Symbol> {
        self.body.iter().map(|s| s.lhs.array.clone()).collect()
    }

    /// Names of all arrays read by the body (guards included).
    pub fn inputs(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        for s in &self.body {
            set.extend(perforad_symbolic::visit::arrays(&s.rhs));
        }
        set
    }

    /// Scalar symbols referenced by the body (excludes counters).
    pub fn parameters(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        for s in &self.body {
            set.extend(perforad_symbolic::visit::scalar_symbols(&s.rhs));
        }
        for c in &self.counters {
            set.remove(c);
        }
        set
    }

    /// Symbols used by the loop bounds (e.g. the grid extent `n`).
    pub fn bound_symbols(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        for b in &self.bounds {
            set.extend(b.lo.symbols().cloned());
            set.extend(b.hi.symbols().cloned());
        }
        for c in &self.counters {
            set.remove(c);
        }
        set
    }

    /// True if every statement writes at exactly the loop counters
    /// (a *gather* nest, parallelisable over any counter).
    pub fn is_gather(&self) -> bool {
        self.body.iter().all(|s| {
            s.lhs.indices.len() == self.counters.len()
                && s.lhs
                    .indices
                    .iter()
                    .zip(&self.counters)
                    .all(|(ix, c)| ix.is_offset_of(c) == Some(0))
        })
    }

    /// The distinct write offsets of the body relative to the counters, if
    /// all writes are at constant offsets (`None` otherwise). A gather nest
    /// returns only the zero offset.
    pub fn write_offsets(&self) -> Option<Vec<Vec<i64>>> {
        let mut set = BTreeSet::new();
        for s in &self.body {
            if s.lhs.indices.len() != self.counters.len() {
                return None;
            }
            let mut off = Vec::with_capacity(self.counters.len());
            for (ix, c) in s.lhs.indices.iter().zip(&self.counters) {
                off.push(ix.is_offset_of(c)?);
            }
            set.insert(off);
        }
        Some(set.into_iter().collect())
    }

    /// Number of points in the iteration space given integer bindings for
    /// the bound symbols; `None` if a symbol is unbound.
    pub fn iteration_count(&self, env: &std::collections::BTreeMap<Symbol, i64>) -> Option<u64> {
        let mut total: u64 = 1;
        for b in &self.bounds {
            let lo = b.lo.eval(env)?;
            let hi = b.hi.eval(env)?;
            if hi < lo {
                return Some(0);
            }
            total = total.saturating_mul((hi - lo + 1) as u64);
        }
        Some(total)
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (d, (c, b)) in self.counters.iter().zip(&self.bounds).enumerate() {
            writeln!(f, "{:indent$}for {c} in {b} {{", "", indent = d * 2)?;
        }
        let indent = self.counters.len() * 2;
        for s in &self.body {
            writeln!(f, "{:indent$}{s}", "", indent = indent)?;
        }
        for d in (0..self.counters.len()).rev() {
            writeln!(f, "{:indent$}}}", "", indent = d * 2)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perforad_symbolic::{ix, Array};

    fn three_point() -> LoopNest {
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        let u = Array::new("u");
        let c = Array::new("c");
        let rhs = c.at(ix![&i])
            * (2.0 * u.at(ix![&i - 1]) - 3.0 * u.at(ix![&i]) + 4.0 * u.at(ix![&i + 1]));
        LoopNest::new(
            vec![i.clone()],
            vec![Bound::new(1, Idx::sym(n) - 1)],
            vec![Statement::assign(Access::new("r", ix![&i]), rhs)],
        )
    }

    #[test]
    fn classification() {
        let nest = three_point();
        assert!(nest.is_gather());
        assert_eq!(nest.rank(), 1);
        assert_eq!(nest.outputs().len(), 1);
        assert!(nest.inputs().contains(&Symbol::new("u")));
        assert!(nest.inputs().contains(&Symbol::new("c")));
        assert_eq!(nest.write_offsets(), Some(vec![vec![0]]));
    }

    #[test]
    fn scatter_write_offsets() {
        let i = Symbol::new("i");
        let ub = Array::new("ub");
        let rb = Array::new("rb");
        let body = vec![
            Statement::add_assign(Access::new("ub", ix![&i - 1]), rb.at(ix![&i])),
            Statement::add_assign(Access::new("ub", ix![&i + 1]), rb.at(ix![&i])),
        ];
        let nest = LoopNest::new(vec![i.clone()], vec![Bound::new(1, 8)], body);
        assert!(!nest.is_gather());
        assert_eq!(nest.write_offsets(), Some(vec![vec![-1], vec![1]]));
        let _ = ub;
    }

    #[test]
    fn iteration_count() {
        let nest = three_point();
        let mut env = std::collections::BTreeMap::new();
        env.insert(Symbol::new("n"), 11i64);
        assert_eq!(nest.iteration_count(&env), Some(10)); // i in [1, 10]
        env.insert(Symbol::new("n"), 1i64);
        assert_eq!(nest.iteration_count(&env), Some(0)); // empty range
    }

    #[test]
    fn display_shape() {
        let nest = three_point();
        let s = nest.to_string();
        assert!(s.contains("for i in [1, n - 1]"), "{s}");
        assert!(s.contains("r(i) ="), "{s}");
    }

    #[test]
    fn parameters_and_bound_symbols() {
        let nest = three_point();
        assert!(nest.parameters().is_empty());
        assert_eq!(
            nest.bound_symbols().into_iter().collect::<Vec<_>>(),
            vec![Symbol::new("n")]
        );
    }
}
