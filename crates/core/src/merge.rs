//! Statement merging: collapse all updates to the same output into one
//! `+=` statement (the merged core loop of §3.2).

use crate::nest::{AssignOp, LoopNest, Statement};
use perforad_symbolic::{Access, Expr};

/// Merge consecutive-compatible statements writing the same array (same
/// operator, same guard) into a single statement whose right-hand side is
/// the canonical sum of the originals.
pub fn merge_statements(nest: &LoopNest) -> LoopNest {
    let mut groups: Vec<(Access, AssignOp, Option<crate::nest::Guard>, Vec<Expr>)> = Vec::new();
    for s in &nest.body {
        match groups
            .iter_mut()
            .find(|(lhs, op, guard, _)| lhs == &s.lhs && *op == s.op && guard == &s.guard)
        {
            Some((_, _, _, exprs)) => exprs.push(s.rhs.clone()),
            None => groups.push((s.lhs.clone(), s.op, s.guard.clone(), vec![s.rhs.clone()])),
        }
    }
    let body = groups
        .into_iter()
        .map(|(lhs, op, guard, exprs)| Statement {
            lhs,
            op,
            rhs: Expr::add_all(exprs),
            guard,
        })
        .collect();
    LoopNest::new(nest.counters.clone(), nest.bounds.clone(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::Bound;
    use perforad_symbolic::{ix, Array, Symbol};

    #[test]
    fn merges_same_lhs() {
        let i = Symbol::new("i");
        let rb = Array::new("rb");
        let body = vec![
            Statement::add_assign(Access::new("ub", ix![&i]), 2.0 * rb.at(ix![&i + 1])),
            Statement::add_assign(Access::new("ub", ix![&i]), -3.0 * rb.at(ix![&i])),
            Statement::add_assign(Access::new("vb", ix![&i]), rb.at(ix![&i])),
        ];
        let nest = LoopNest::new(vec![i.clone()], vec![Bound::new(0, 9)], body);
        let merged = merge_statements(&nest);
        assert_eq!(merged.body.len(), 2);
        assert_eq!(
            merged.body[0].rhs,
            -3.0 * rb.at(ix![&i]) + 2.0 * rb.at(ix![&i + 1])
        );
    }

    #[test]
    fn different_ops_do_not_merge() {
        let i = Symbol::new("i");
        let rb = Array::new("rb");
        let body = vec![
            Statement::assign(Access::new("ub", ix![&i]), rb.at(ix![&i])),
            Statement::add_assign(Access::new("ub", ix![&i]), rb.at(ix![&i])),
        ];
        let nest = LoopNest::new(vec![i.clone()], vec![Bound::new(0, 9)], body);
        assert_eq!(merge_statements(&nest).body.len(), 2);
    }

    #[test]
    fn merging_preserves_mathematical_sum() {
        // x + x merges to 2x through canonical Add.
        let i = Symbol::new("i");
        let rb = Array::new("rb");
        let body = vec![
            Statement::add_assign(Access::new("ub", ix![&i]), rb.at(ix![&i])),
            Statement::add_assign(Access::new("ub", ix![&i]), rb.at(ix![&i])),
        ];
        let nest = LoopNest::new(vec![i.clone()], vec![Bound::new(0, 9)], body);
        let merged = merge_statements(&nest);
        assert_eq!(merged.body.len(), 1);
        assert_eq!(merged.body[0].rhs, 2 * rb.at(ix![&i]));
    }
}
