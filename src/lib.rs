//! # PerforAD-rs
//!
//! A Rust reproduction of *"Automatic Differentiation for Adjoint Stencil
//! Loops"* (Hückelheim, Kukreja, Narayanan, Luporini, Gorman, Hovland —
//! ICPP 2019): reverse-mode differentiation of gather stencil loops into
//! **gather-only** adjoint stencil loops that parallelise exactly like the
//! primal — no atomics, no extra memory, no barriers.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`symbolic`] — expression algebra (SymPy substitute);
//! * [`core`] — the loop-nest IR and the adjoint stencil transformation;
//! * [`codegen`] — C/Rust back-ends and a DSL front-end;
//! * [`exec`] — grids, thread pool, atomic-f64 baseline, bytecode VM;
//! * [`jit`] — run-time native lowering: fused groups compiled by
//!   `rustc` into `dlopen`-loaded cdylibs;
//! * [`sched`] — the fusion + tiling execution scheduler;
//! * [`tune`] — the perf-model-guided autotuner for adjoint schedules
//!   and checkpoint budgets;
//! * [`ckpt`] — memory-budgeted checkpointed time loops: binomial
//!   (revolve) snapshot plans, memory/disk snapshot stores, and the
//!   replay driver;
//! * [`obs`] — structured tracing + metrics: `span!` guards, a typed
//!   counter/gauge/histogram registry, Chrome-trace export, and the
//!   [`obs::TraceReport`] per-phase rollup;
//! * [`autodiff`] — tape-based conventional AD (verification baseline);
//! * [`perfmodel`] — Broadwell/KNL analytic models for the figures;
//! * [`pde`] — the wave/Burgers/heat test cases, seismic gradients,
//!   checkpointing;
//! * [`serve`] — gradient-as-a-service: a socket daemon that compiles,
//!   tunes, and JITs once per kernel fingerprint and then streams
//!   gradient requests against the cached plan.
//!
//! ```
//! use perforad::prelude::*;
//!
//! // r[i] = c[i]*(2 u[i-1] - 3 u[i] + 4 u[i+1])   (§3.2 of the paper)
//! let nest = parse_stencil(
//!     "for i in 1 .. n-1 { r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]); }",
//! ).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//! assert_eq!(adjoint.nest_count(), 5);
//! ```
//!
//! ## Scheduling
//!
//! The transformation emits a *set* of race-free loop nests — one core
//! nest plus `O(4^d)` boundary nests. Executing each as its own
//! [`exec::Plan`] re-synchronises the thread pool once per nest; the
//! [`sched`] subsystem removes that overhead with a fuse/tile pipeline:
//!
//! 1. **Dependence graph** — read/write footprints from
//!    [`core::access_boxes`] (the disjoint-region metadata of §3.3.3);
//!    two nests conflict when they write the same array over overlapping
//!    boxes, or when one writes an array the other reads at all.
//! 2. **Fusion** — conflict-free nests merge into groups; the disjoint
//!    adjoint decomposition always fuses into a *single* group (its write
//!    regions are pairwise disjoint by construction), and nests with
//!    overlapping write regions are never fused.
//! 3. **Tiling** — each group's iteration space is cut into cache-blocked
//!    [`exec::Tile`]s with configurable edges.
//! 4. **Execution** — [`sched::run_schedule`] runs every group as one
//!    parallel region, assigning tiles to workers statically (LPT) or
//!    dynamically (shared counter), so boundary nests ride along with the
//!    core loop instead of each paying a barrier.
//!
//! ```
//! use perforad::prelude::*;
//!
//! let nest = parse_stencil(
//!     "for i in 1 .. n-1 { r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]); }",
//! ).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//!
//! let mut ws = Workspace::new()
//!     .with("u", Grid::from_fn(&[129], |ix| ix[0] as f64))
//!     .with("c", Grid::full(&[129], 0.5))
//!     .with("r", Grid::zeros(&[129]))
//!     .with("u_b", Grid::zeros(&[129]))
//!     .with("r_b", Grid::full(&[129], 1.0));
//! let bind = Binding::new().size("n", 128);
//!
//! let schedule = compile_schedule(&adjoint, &ws, &bind, &SchedOptions::default()).unwrap();
//! assert_eq!(schedule.group_count(), 1);   // 5 nests, one parallel region
//!
//! let pool = ThreadPool::new(4);
//! run_schedule(&schedule, &mut ws, &pool).unwrap();
//! ```
//!
//! ## Autotuning
//!
//! The best schedule configuration — fuse or not, tile sizes, lowering,
//! tile policy, serial vs. parallel — depends on the kernel and the
//! machine. Instead of hand-picking [`sched::SchedOptions`], the
//! [`tune`] subsystem searches the whole space: the analytic model
//! ([`perfmodel::predict_schedule`]) prunes it to a top-K set, the
//! survivors are wall-clock timed, and the winner is cached under a
//! schedule fingerprint + machine signature so the next run skips the
//! search.
//!
//! ```
//! use perforad::prelude::*;
//!
//! let nest = parse_stencil(
//!     "for i in 1 .. n-1 { r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]); }",
//! ).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//!
//! let mut ws = Workspace::new()
//!     .with("u", Grid::from_fn(&[257], |ix| ix[0] as f64))
//!     .with("c", Grid::full(&[257], 0.5))
//!     .with("r", Grid::zeros(&[257]))
//!     .with("u_b", Grid::zeros(&[257]))
//!     .with("r_b", Grid::full(&[257], 1.0));
//! let bind = Binding::new().size("n", 256);
//! let pool = ThreadPool::new(2);
//!
//! // `Measure::Model` trusts the analytic ranking (no timing runs) —
//! // production callers use the default wall-clock measure instead.
//! let opts = TuneOptions::default().without_cache().with_measure(Measure::Model);
//! let mut schedule = compile_schedule(&adjoint, &ws, &bind, &SchedOptions::default()).unwrap();
//! let cfg: TunedConfig = schedule.autotune(&mut ws, &bind, &pool, &opts).unwrap();
//! run_tuned(&schedule, &cfg, &mut ws, &pool).unwrap();
//! assert!(ws.grid("u_b").sum() != 0.0);
//! ```
//!
//! ## Checkpointing
//!
//! A reverse sweep over `T` time steps needs the primal trajectory, and
//! storing it densely caps `T` at whatever RAM allows. The [`ckpt`]
//! subsystem bounds that memory instead: a [`ckpt::CheckpointPlan`]
//! places binomial (revolve) checkpoints for a given snapshot budget, a
//! [`ckpt::SnapshotStore`] keeps them in RAM ([`ckpt::MemStore`]) or
//! spills them bitwise-exactly to disk ([`ckpt::DiskStore`], see
//! `PERFORAD_CKPT_DIR`), and [`ckpt::checkpointed_adjoint_plan`] replays
//! forward segments from snapshots so the reverse sweep sees every state
//! without ever materializing the trajectory. The result is
//! bitwise-identical to store-all — only the memory/recompute trade-off
//! moves, and the autotuner picks the budget
//! (`TuneOptions::with_time_loop`) jointly with the stencil schedule.
//!
//! ```
//! use perforad::prelude::*;
//!
//! // x_{t+1} = x_t + dt·x_t², J = x_T, reversed under a budget of 5
//! // snapshots instead of the 65 a store-all sweep would keep live.
//! let step = |x: &f64, _t: usize| x + 0.01 * x * x;
//! let plan = CheckpointPlan::with_budget(64, 5);
//! let (mut x_t, mut lambda) = (0.0, 1.0);
//! let report = checkpointed_adjoint_plan(
//!     &plan,
//!     0.8_f64,
//!     &mut MemStore::new(),
//!     &mut |x, t| step(x, t),
//!     &mut |x| x_t = *x,                        // objective: J = x_T
//!     &mut |x, _t| lambda *= 1.0 + 0.02 * x,    // reverse step
//! ).unwrap();
//!
//! // Bitwise-identical to the dense reference...
//! let mut reference = vec![0.8_f64];
//! for t in 0..64 { reference.push(step(&reference[t], t)); }
//! assert_eq!(x_t.to_bits(), reference[64].to_bits());
//! // ...at 5 live snapshots, paying a bounded recompute ratio.
//! assert!(report.peak_snapshots <= 5);
//! assert!(report.recompute_ratio() < 3.0);
//! ```
//!
//! ## JIT execution
//!
//! The interpreter and the row executor still pay per-op dispatch; the
//! paper's numbers come from *compiler-optimized* loops. The [`jit`]
//! subsystem closes that gap at run time: each fusion group of a
//! compiled schedule is emitted as Rust source (tile-granular,
//! guard-hoisted `extern "C"` entry points with sizes baked in —
//! [`codegen::rust::jit_group_module`]), compiled out-of-process by
//! `rustc` into a `cdylib`, loaded with `dlopen`, and registered as the
//! third [`exec::Lowering`] tier, `Lowering::Jit`. Artifacts persist in
//! `PERFORAD_JIT_CACHE` keyed by plan fingerprint × machine signature,
//! so the compile cost is paid once per fingerprint; without a
//! toolchain (or before [`jit::prepare_schedule`] runs) Jit execution
//! falls back to the bitwise-identical row executor. The autotuner
//! searches the Jit axis automatically whenever the host supports it.
//!
//! ```no_run
//! use perforad::prelude::*;
//!
//! let nest = parse_stencil(
//!     "for i in 1 .. n-1 { r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]); }",
//! ).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//!
//! let mut ws = Workspace::new()
//!     .with("u", Grid::from_fn(&[257], |ix| ix[0] as f64))
//!     .with("c", Grid::full(&[257], 0.5))
//!     .with("r", Grid::zeros(&[257]))
//!     .with("u_b", Grid::zeros(&[257]))
//!     .with("r_b", Grid::full(&[257], 1.0));
//! let bind = Binding::new().size("n", 256);
//!
//! // Compile the schedule with the Jit lowering, then make it native.
//! let schedule =
//!     compile_schedule(&adjoint, &ws, &bind, &SchedOptions::default().with_jit()).unwrap();
//! let report = prepare_schedule(&schedule, &bind, &JitOptions::default()).unwrap();
//! assert!(report.compiled + report.loaded + report.registered == report.groups);
//!
//! let pool = ThreadPool::new(4);
//! run_schedule(&schedule, &mut ws, &pool).unwrap();   // native tiles
//! assert!(ws.grid("u_b").sum() != 0.0);
//! ```
//!
//! ## Tracing
//!
//! Every layer of the pipeline — scheduler, tuner, JIT, checkpointing,
//! executor, seismic driver — is instrumented with the std-only [`obs`]
//! crate. `span!` guards record into per-thread buffers (when recording
//! is disabled, via `PERFORAD_TRACE` unset, the whole round trip is one
//! relaxed atomic load), typed counters/gauges/histograms accumulate in
//! a process-wide registry, and a finished trace exports as Chrome-trace
//! JSON (open in `chrome://tracing` or Perfetto; written automatically
//! when `PERFORAD_TRACE_OUT` names a path) or rolls up into an
//! [`obs::TraceReport`] of per-phase self/total times. Spans recorded
//! inside an [`obs::RequestScope`] carry that request's id (it shows up
//! as a `request_id` arg in the Chrome trace), and the always-on flight
//! recorder dumps the recent-span ring plus metrics to
//! `PERFORAD_FLIGHT_DIR` on a panic, degradation, or deadline breach.
//!
//! ```
//! use perforad::prelude::*;
//!
//! perforad::obs::set_enabled(true); // or set PERFORAD_TRACE=1
//! {
//!     let _root = perforad::obs::span!("demo.root", "demo");
//!     let _child = perforad::obs::span!("demo.step", "demo", "items" => 3);
//!     counter("demo.items").add(3);
//! }
//! let events = perforad::obs::collect_events();
//! assert_eq!(events.len(), 2);
//!
//! let report = TraceReport::build(&events, 10);
//! assert_eq!(report.spans, 2);
//! assert!(report.wall_ns >= report.phases[0].self_ns);
//!
//! let json = chrome_trace_json(&events); // chrome://tracing-ready
//! assert!(json.contains("\"traceEvents\""));
//! let metrics = MetricsSnapshot::collect();
//! assert!(metrics.counters.contains(&("demo.items".into(), 3)));
//! ```
//!
//! ## Serving
//!
//! Everything above is batch machinery; the [`serve`] crate is the
//! long-running front. A daemon (`perforad-serve`, or [`serve::Server`]
//! embedded in-process) listens on a Unix-domain socket — localhost TCP
//! as the fallback — and speaks a length-prefixed JSON protocol:
//! `Compile` warms a kernel (adjoint transform + autotune + JIT +
//! checkpoint budget, **once per fingerprint**, cached process-wide),
//! `Gradient`/`GradientBatch` stream shot data against the cached plan
//! through the shared pool, and `Stats` reports cache hit rates, queue
//! depth, and per-fingerprint request counts from the [`obs`] registry.
//! Served gradients are bitwise-identical to the in-process
//! [`pde::seismic::gradient`] call (`tests/serve.rs` pins this, along
//! with the zero-recompile warm path, via the obs counters).
//!
//! The daemon is hardened for unattended operation: bounded admission
//! (`PERFORAD_SERVE_MAX_QUEUE` → `Busy` pushback with a retry hint,
//! absorbed by the client's [`serve::RetryPolicy`]), per-request
//! deadlines, socket timeouts, a connection cap, and graceful
//! shutdown draining. Every risky I/O site (disk spill, rustc spawn,
//! artifact/cache reads, socket frames) routes through the
//! deterministic fault-injection points in [`obs::fault`]
//! (`PERFORAD_FAULT`), and `tests/fault.rs` proves each injected
//! failure degrades — bitwise-identical fallback or structured error —
//! instead of corrupting or hanging.
//!
//! The daemon's telemetry plane rides the same [`obs`] machinery: every
//! reply echoes a server-assigned `request_id`, a request with
//! `trace: true` ([`serve::Client::gradient_traced`]) gets its span
//! rollup back inline, `perforad-serve --metrics` serves the registry
//! as Prometheus text plus `/healthz`, `perforad-top` renders the
//! `Stats` reply as a live dashboard, and incidents leave flight-recorder
//! dumps under `PERFORAD_FLIGHT_DIR` (`tests/telemetry.rs` pins all of
//! this, including that tracing never changes gradient bits).
//!
//! ```no_run
//! use perforad::prelude::*;
//!
//! let server = ServeServer::bind(&ServeOptions::default()).unwrap();
//! let endpoint = server.endpoint();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = ServeClient::connect(&endpoint).unwrap();
//! let compiled = client
//!     .compile(CompileRequest::Seismic {
//!         n: 16, steps: 8, d: 0.1, c: None, budget: None, checkpointed: None,
//!     })
//!     .unwrap();
//! let reply = client
//!     .gradient(&compiled.fingerprint, vec![0.0; 8], vec![0.0; 16 * 16 * 16])
//!     .unwrap();
//! assert_eq!(reply.gradient.len(), 16 * 16 * 16);
//! ```

pub use perforad_autodiff as autodiff;
pub use perforad_ckpt as ckpt;
pub use perforad_codegen as codegen;
pub use perforad_core as core;
pub use perforad_exec as exec;
pub use perforad_jit as jit;
pub use perforad_obs as obs;
pub use perforad_pde as pde;
pub use perforad_perfmodel as perfmodel;
pub use perforad_sched as sched;
pub use perforad_serve as serve;
pub use perforad_symbolic as symbolic;
pub use perforad_tune as tune;

/// The most common imports in one place.
pub mod prelude {
    pub use perforad_ckpt::{
        checkpointed_adjoint_plan, CheckpointPlan, CkptReport, DiskStore, FallbackStore, MemStore,
        Snapshot, SnapshotStore,
    };
    pub use perforad_codegen::{c_nest, parse_stencil, print_function, COptions};
    pub use perforad_core::{
        make_loop_nest, ActivityMap, Adjoint, AdjointOptions, BoundaryStrategy, LoopNest,
        StencilSpec,
    };
    pub use perforad_exec::{
        compile_adjoint, compile_nest, default_pool, run_parallel, run_parallel_jit,
        run_parallel_rows, run_scatter_atomic, run_serial, run_serial_jit, run_serial_rows,
        Binding, ExecMode, Grid, Lowering, ThreadPool, Workspace,
    };
    pub use perforad_jit::{prepare_schedule, JitOptions, JitReport};
    pub use perforad_obs::{
        chrome_trace_json, collect_events, counter, gauge, histogram, write_chrome_trace,
        MetricsSnapshot, SpanEvent, SpanGuard, TraceReport,
    };
    pub use perforad_sched::{
        compile_schedule, run_schedule, run_tuned, SchedOptions, Schedule, TilePolicy, TunedConfig,
        TunedStrategy,
    };
    pub use perforad_serve::{
        serve, Client as ServeClient, CompileRequest, Endpoint as ServeEndpoint, ServeOptions,
        Server as ServeServer,
    };
    pub use perforad_symbolic::{ix, Array, Expr, Idx, Symbol};
    pub use perforad_tune::{
        autotune_adjoint, autotune_nests, pick_batch_strategy, BatchStrategy, Measure,
        ScheduleAutotune, TimeLoop, TuneError, TuneOptions, TuneReport,
    };
}
