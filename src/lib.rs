//! # PerforAD-rs
//!
//! A Rust reproduction of *"Automatic Differentiation for Adjoint Stencil
//! Loops"* (Hückelheim, Kukreja, Narayanan, Luporini, Gorman, Hovland —
//! ICPP 2019): reverse-mode differentiation of gather stencil loops into
//! **gather-only** adjoint stencil loops that parallelise exactly like the
//! primal — no atomics, no extra memory, no barriers.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`symbolic`] — expression algebra (SymPy substitute);
//! * [`core`] — the loop-nest IR and the adjoint stencil transformation;
//! * [`codegen`] — C/Rust back-ends and a DSL front-end;
//! * [`exec`] — grids, thread pool, atomic-f64 baseline, bytecode VM;
//! * [`autodiff`] — tape-based conventional AD (verification baseline);
//! * [`perfmodel`] — Broadwell/KNL analytic models for the figures;
//! * [`pde`] — the wave/Burgers/heat test cases, seismic gradients,
//!   checkpointing.
//!
//! ```
//! use perforad::prelude::*;
//!
//! // r[i] = c[i]*(2 u[i-1] - 3 u[i] + 4 u[i+1])   (§3.2 of the paper)
//! let nest = parse_stencil(
//!     "for i in 1 .. n-1 { r[i] = c[i]*(2.0*u[i-1] - 3.0*u[i] + 4.0*u[i+1]); }",
//! ).unwrap();
//! let act = ActivityMap::new().with_suffixed("u").with_suffixed("r");
//! let adjoint = nest.adjoint(&act, &AdjointOptions::default()).unwrap();
//! assert_eq!(adjoint.nest_count(), 5);
//! ```

pub use perforad_autodiff as autodiff;
pub use perforad_codegen as codegen;
pub use perforad_core as core;
pub use perforad_exec as exec;
pub use perforad_perfmodel as perfmodel;
pub use perforad_pde as pde;
pub use perforad_symbolic as symbolic;

/// The most common imports in one place.
pub mod prelude {
    pub use perforad_codegen::{c_nest, parse_stencil, print_function, COptions};
    pub use perforad_core::{
        make_loop_nest, ActivityMap, Adjoint, AdjointOptions, BoundaryStrategy, LoopNest,
        StencilSpec,
    };
    pub use perforad_exec::{
        compile_adjoint, compile_nest, run_parallel, run_scatter_atomic, run_serial, Binding,
        Grid, ThreadPool, Workspace,
    };
    pub use perforad_symbolic::{ix, Array, Expr, Idx, Symbol};
}
